//! Hierarchical (tiled) SHDG planning for very large fields.
//!
//! The flat planner's covering stage is superlinear in the sensor count —
//! the coverage instance alone is `O(n²)` bits — which walls it off
//! somewhere past 100k sensors. The standard escape hatch in the
//! mobile-sink literature is spatial decomposition: partition the field
//! geometrically, solve each region as an independent sub-problem, and
//! join the regional tours. This module implements that pipeline:
//!
//! 1. **Tiling** — [`mdg_geom::Tiling`] buckets the sensors into square
//!    tiles sized so each holds roughly [`HierConfig::target_per_tile`]
//!    sensors (or explicitly via [`HierConfig::tile_cells`]).
//! 2. **Per-tile planning** — every non-empty tile runs the flat
//!    pipeline (cover → prune → tour) on a *tile-local* sensor-site
//!    instance, in parallel across tiles on `mdg-par`. Costs are
//!    quadratic in the tile, not the field.
//! 3. **Stitching** — sub-tours are concatenated in serpentine tile
//!    order: each is opened at its longest edge and oriented to shorten
//!    the seam; tiles with fewer than three stops are spliced into the
//!    growing cycle via [`mdg_tour::cheapest_insertion_position`].
//! 4. **Touch-up** — candidate-list 2-opt and Or-opt seeded *only at the
//!    seam vertices* ([`mdg_tour::two_opt_neighbors_seeded`],
//!    [`mdg_tour::or_opt_neighbors_seeded`]) repair cross-tile crossings
//!    at a cost proportional to the seams.
//!
//! ## Incremental replanning
//!
//! The pipeline's intermediate state — the tiling, each tile's member
//! sensors, and each tile's pre-stitch sub-tour — is retained in
//! [`HierPlan`], which makes deltas local: a sensor death or addition
//! dirties only the tile that owns its position ([`mdg_geom::Tiling::tile_of`]),
//! [`HierPlan::apply_delta`] re-runs cover → prune → tour on the dirty
//! tiles only, re-stitches from the retained sub-tours (an `O(stops)`
//! concatenation), and re-polishes only the seams adjacent to dirty
//! tiles. When a delta dirties at least half the occupied tiles — or
//! changes the transmission range, which invalidates every cover — the
//! incremental path escalates to a full re-plan.
//!
//! ## Determinism
//!
//! Hierarchical plans — cold and after any delta sequence — are
//! bit-identical at any thread count. The tile fan-out uses the
//! order-preserving `mdg_par::par_map`, nested parallel calls inside a
//! tile fall back inline (so per-tile arithmetic never depends on
//! sibling tiles), and stitching consumes the tile results in serpentine
//! (index-derived) order with strict-inequality tie-breaks. Dirty tiles
//! are re-planned in the same serpentine order.
//!
//! ## Quality
//!
//! The price of locality is a slightly longer tour: each tile is toured
//! in isolation, so only the seams are globally optimized. The S5 sweep
//! (`BENCH_scale_hier.json`) gates the regression at ≤ 1.25× the flat
//! tour on fields both planners can solve; the serve-layer equivalence
//! suite additionally bounds post-churn incremental plans against a cold
//! re-plan of the same field.

use crate::error::PlanError;
use crate::mutate::UNASSIGNED;
use crate::plan::{GatheringPlan, PollingPoint};
use crate::planner::{CandidateMode, CoveringStrategy, PlannerConfig};
use crate::tour_aware::{tour_aware_cover, TourAwareConfig};
use mdg_cover::{capacitated_greedy_cover, greedy_cover, prune_cover, CoverageInstance};
use mdg_geom::{Point, Tiling};
use mdg_net::Network;
use mdg_tour::{
    cheapest_insertion_position, improve, improve_neighbors, or_opt_neighbors_seeded,
    two_opt_neighbors_seeded, ImproveConfig, MatrixCost, NeighborLists, Tour,
};

/// Stop count (including the sink) above which a tile's tour switches
/// from the dense matrix pipeline to neighbor-list local search — same
/// threshold as the flat planner.
const DENSE_TOUR_LIMIT: usize = 512;

/// Neighbors per city in the seam touch-up's candidate lists. Seam
/// repairs are local, so a short list suffices.
const TOUCH_UP_NEIGHBORS: usize = 8;

/// Longest segment the Or-opt half of the touch-up may relocate.
const TOUCH_UP_MAX_SEGMENT: usize = 3;

/// Hierarchical planner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierConfig {
    /// Per-tile planning configuration. `candidates` must be
    /// [`CandidateMode::SensorSites`]; tile instances are sensor-site by
    /// construction, which also guarantees per-tile feasibility.
    pub base: PlannerConfig,
    /// Explicit tile side, in multiples of the transmission range
    /// (`Some(8.0)` with a 30 m range gives 240 m tiles). `None` sizes
    /// tiles automatically from the field density so each holds about
    /// [`HierConfig::target_per_tile`] sensors.
    pub tile_cells: Option<f64>,
    /// Auto-sizing target: sensors per tile. Small enough that a tile
    /// plans in milliseconds, large enough that seams are rare.
    pub target_per_tile: usize,
    /// Run the seam-seeded 2-opt/Or-opt touch-up after stitching.
    pub touch_up: bool,
}

impl Default for HierConfig {
    fn default() -> Self {
        HierConfig {
            base: PlannerConfig::default(),
            tile_cells: None,
            target_per_tile: 2048,
            touch_up: true,
        }
    }
}

/// How a hierarchical plan came together, for logs and benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierStats {
    /// Total tiles in the lattice (including empty ones).
    pub n_tiles: usize,
    /// Tiles that contained at least one sensor (and thus a sub-plan).
    pub n_occupied: usize,
    /// Stops from degenerate (< 3 stop) tiles spliced individually.
    pub spliced_stops: usize,
    /// Effective tile side in meters.
    pub tile_side: f64,
}

/// What [`HierPlan::apply_delta`] did, for session stats and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierDeltaReport {
    /// The delta escalated to a full re-plan (≥ 50% of occupied tiles
    /// dirty, or a range change).
    pub full_rebuild: bool,
    /// Tiles dirtied by the delta (0 = the delta was a no-op).
    pub dirty_tiles: usize,
    /// Occupied tiles after the delta.
    pub occupied_tiles: usize,
    /// Polling points re-planned (dirty tiles' stops, or the whole plan
    /// on escalation).
    pub replanned_stops: usize,
}

impl HierDeltaReport {
    /// True when the delta changed nothing (no dirty tiles, no rebuild).
    pub fn is_noop(&self) -> bool {
        !self.full_rebuild && self.dirty_tiles == 0
    }
}

/// The hierarchical tiled planner. See the module docs for the pipeline.
///
/// ```
/// use mdg_core::hier::HierPlanner;
/// use mdg_net::{DeploymentConfig, Network};
///
/// let net = Network::build(DeploymentConfig::uniform(400, 400.0).generate(7), 30.0);
/// let plan = HierPlanner::new().plan(&net).unwrap();
/// assert!(plan.validate(&net.deployment.sensors, net.range).is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct HierPlanner {
    config: HierConfig,
}

/// A planned tile: its stops in cycle order plus the assignment choices,
/// all in *global* sensor ids.
#[derive(Debug, Clone)]
struct TilePlan {
    /// Stop positions, cycle order.
    stops: Vec<Point>,
    /// Global sensor id of each stop, parallel to `stops`.
    cands: Vec<u32>,
    /// For each live tile member (member order): global sensor id of the
    /// stop it uploads to.
    chosen: Vec<u32>,
}

impl HierPlanner {
    /// Planner with the default configuration.
    pub fn new() -> Self {
        HierPlanner::default()
    }

    /// Planner with an explicit configuration.
    pub fn with_config(config: HierConfig) -> Self {
        HierPlanner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &HierConfig {
        &self.config
    }

    /// Plans a single-collector gathering tour hierarchically.
    pub fn plan(&self, net: &Network) -> Result<GatheringPlan, PlanError> {
        self.plan_with_stats(net).map(|(plan, _)| plan)
    }

    /// Like [`HierPlanner::plan`], also reporting tiling statistics.
    pub fn plan_with_stats(&self, net: &Network) -> Result<(GatheringPlan, HierStats), PlanError> {
        HierPlan::build(
            &net.deployment.sensors,
            net.deployment.sink,
            net.range,
            self.config,
        )
        .map(HierPlan::into_plan_and_stats)
    }
}

/// Convenience: hierarchical plan with the default configuration.
pub fn plan_hier(net: &Network) -> Result<GatheringPlan, PlanError> {
    HierPlanner::new().plan(net)
}

/// A retained hierarchical plan: the finished [`GatheringPlan`] plus the
/// intermediate state needed to update it incrementally — the tiling,
/// each tile's live member sensors, and each tile's pre-stitch sub-tour.
///
/// `HierPlan` does **not** own the sensor coordinates: the caller (a
/// warm serving session, typically) keeps the growing `Vec<Point>` and
/// alive mask and passes them to [`HierPlan::apply_delta`], so a
/// million-sensor field is stored once, not twice.
///
/// ```
/// use mdg_core::hier::{HierConfig, HierPlan};
/// use mdg_net::DeploymentConfig;
/// use mdg_geom::Point;
///
/// let dep = DeploymentConfig::uniform(500, 500.0).generate(3);
/// let mut sensors = dep.sensors.clone();
/// let mut alive = vec![true; sensors.len()];
/// let cfg = HierConfig { tile_cells: Some(5.0), ..HierConfig::default() };
/// let mut hp = HierPlan::build(&sensors, dep.sink, 30.0, cfg).unwrap();
///
/// alive[7] = false;
/// sensors.push(Point::new(250.0, 250.0));
/// alive.push(true);
/// let report = hp.apply_delta(&sensors, &alive, &[7], None).unwrap();
/// assert!(!report.full_rebuild);
/// hp.plan().validate_live(&sensors, hp.range(), &alive).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct HierPlan {
    cfg: HierConfig,
    sink: Point,
    range: f64,
    tiling: Tiling,
    /// Per-tile live member sensor ids, ascending; indexed by tile.
    members: Vec<Vec<u32>>,
    /// Per-tile retained sub-plans; `None` = no live members.
    tiles: Vec<Option<TilePlan>>,
    /// Sensor id slots the plan's assignment spans (live + dead).
    n_sensors: usize,
    plan: GatheringPlan,
    stats: HierStats,
}

impl HierPlan {
    /// Plans `sensors` (all considered alive) hierarchically and retains
    /// the per-tile state for incremental updates.
    pub fn build(
        sensors: &[Point],
        sink: Point,
        range: f64,
        cfg: HierConfig,
    ) -> Result<Self, PlanError> {
        if let CandidateMode::Grid { .. } = cfg.base.candidates {
            return Err(PlanError::Unsupported(
                "hierarchical planning requires sensor-site candidates \
                 (per-tile instances are sensor-site by construction)"
                    .into(),
            ));
        }
        let mut sp_hier = mdg_obs::span("hier");
        sp_hier.add_items(sensors.len() as u64);

        let side = tile_side_for(&cfg, sensors, range)?;
        let (tiling, members) = {
            let _sp = mdg_obs::span("tiling");
            let tiling = Tiling::build(sensors, side);
            let members: Vec<Vec<u32>> = (0..tiling.n_tiles())
                .map(|t| tiling.points_in(t).to_vec())
                .collect();
            (tiling, members)
        };
        let tiles = plan_all_tiles(sensors, &tiling, &members, range, &cfg.base);
        let mut hp = HierPlan {
            cfg,
            sink,
            range,
            tiling,
            members,
            tiles,
            n_sensors: sensors.len(),
            plan: GatheringPlan::new(sink, Vec::new(), Vec::new()),
            stats: HierStats {
                n_tiles: 0,
                n_occupied: 0,
                spliced_stops: 0,
                tile_side: side,
            },
        };
        hp.materialize(sensors, None);
        Ok(hp)
    }

    /// The current gathering plan. Its `assignment` spans every sensor id
    /// slot ever planned; dead sensors are [`UNASSIGNED`], so validate
    /// with [`GatheringPlan::validate_live`] once deltas have run.
    pub fn plan(&self) -> &GatheringPlan {
        &self.plan
    }

    /// Tiling statistics for the current plan.
    pub fn stats(&self) -> HierStats {
        self.stats
    }

    /// The transmission range the current plan covers at.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Sensor id slots the plan spans (live + dead).
    pub fn n_sensors(&self) -> usize {
        self.n_sensors
    }

    /// Consumes the retained state, yielding the plan and its stats.
    pub fn into_plan_and_stats(self) -> (GatheringPlan, HierStats) {
        (self.plan, self.stats)
    }

    /// Rough heap footprint of the retained state in bytes (tiling CSR
    /// buckets, member lists, sub-tours, and the materialized plan) —
    /// the serving layer's byte-aware session eviction reads this.
    pub fn approx_bytes(&self) -> u64 {
        let tiling = self.n_sensors as u64 * 4 + self.tiling.n_tiles() as u64 * 4;
        let members: u64 = self
            .members
            .iter()
            .map(|m| 24 + m.len() as u64 * 4)
            .sum::<u64>();
        let tiles: u64 = self
            .tiles
            .iter()
            .flatten()
            .map(|tp| 72 + tp.stops.len() as u64 * 20 + tp.chosen.len() as u64 * 4)
            .sum::<u64>();
        tiling + members + tiles + self.plan.approx_bytes()
    }

    /// Applies a delta — sensor deaths, appended sensors, and/or a range
    /// change — by re-planning only the tiles it dirties.
    ///
    /// `sensors`/`alive` are the caller's full arrays *after* the delta:
    /// ids past the previous length are taken as newly added (and must be
    /// alive); `died` lists the ids newly marked dead (already-dead ids
    /// are tolerated and ignored). Deaths and additions dirty the owning
    /// tile of their position; dirty tiles re-run cover → prune → tour in
    /// serpentine order on `mdg-par`, the cycle is re-stitched from the
    /// retained sub-tours, and the seam touch-up is seeded only at seams
    /// adjacent to dirty tiles. If at least half the occupied tiles are
    /// dirty — or the range changed, which invalidates every tile's
    /// cover — the whole plan is rebuilt (fresh tiling included), exactly
    /// like [`HierPlan::build`] on the live field.
    ///
    /// The result is bit-identical at any thread count, and identical to
    /// replaying the same delta sequence on any other machine.
    pub fn apply_delta(
        &mut self,
        sensors: &[Point],
        alive: &[bool],
        died: &[u32],
        new_range: Option<f64>,
    ) -> Result<HierDeltaReport, PlanError> {
        assert_eq!(sensors.len(), alive.len(), "alive mask size");
        assert!(
            sensors.len() >= self.n_sensors,
            "sensor id slots never shrink (deaths are mask flips)"
        );
        let n_new = sensors.len();
        let _sp_hier = mdg_obs::span("hier");
        let mut sp = mdg_obs::span("delta");
        let n_added = n_new - self.n_sensors;
        sp.add_items((died.len() + n_added) as u64);

        let range_changed = new_range.is_some_and(|r| (r - self.range).abs() > 1e-12);
        let occupied_before = self.stats.n_occupied;

        // 1. Route the delta to its dirty tiles via the position → tile
        //    lattice map. Member lists are updated here even when we end
        //    up escalating — the full rebuild recomputes them anyway.
        //    The dirty mask is O(tiles) and rebuilt every delta, so it
        //    comes from the thread's scratch pool: a warm session replays
        //    deltas on the same thread and reuses the capacity.
        let mut dirty: Vec<bool> = mdg_par::scratch::take_cap(self.tiling.n_tiles());
        dirty.resize(self.tiling.n_tiles(), false);
        let mut n_dirty = 0usize;
        {
            let _sp = mdg_obs::span("dirty_map");
            for &d in died {
                let s = d as usize;
                if s >= n_new {
                    continue;
                }
                let t = self.tiling.tile_of(sensors[s]);
                if let Ok(i) = self.members[t].binary_search(&d) {
                    self.members[t].remove(i);
                    if !dirty[t] {
                        dirty[t] = true;
                        n_dirty += 1;
                    }
                }
            }
            for g in self.n_sensors..n_new {
                debug_assert!(alive[g], "appended sensors must be alive");
                let t = self.tiling.tile_of(sensors[g]);
                // Appended ids exceed every existing member id and arrive
                // in ascending order, so pushing keeps the list sorted.
                self.members[t].push(g as u32);
                if !dirty[t] {
                    dirty[t] = true;
                    n_dirty += 1;
                }
            }
        }
        self.n_sensors = n_new;
        if let Some(r) = new_range {
            self.range = r;
        }

        if n_dirty == 0 && !range_changed {
            mdg_par::scratch::put(dirty);
            return Ok(HierDeltaReport {
                full_rebuild: false,
                dirty_tiles: 0,
                occupied_tiles: occupied_before,
                replanned_stops: 0,
            });
        }

        // 2. Escalate when locality is gone: a range change invalidates
        //    every tile's cover, and once half the occupied tiles are
        //    dirty a fresh tiling (re-sized to the live density) beats
        //    patching the old one.
        if range_changed || 2 * n_dirty >= occupied_before.max(1) {
            mdg_obs::counter("hier/delta_full_replans").add(1);
            mdg_par::scratch::put(dirty);
            self.rebuild_full(sensors, alive)?;
            return Ok(HierDeltaReport {
                full_rebuild: true,
                dirty_tiles: n_dirty,
                occupied_tiles: self.stats.n_occupied,
                replanned_stops: self.plan.n_polling_points(),
            });
        }

        // 3. Re-plan the dirty tiles only, fanned out in serpentine order.
        mdg_obs::counter("hier/dirty_tiles").add(n_dirty as u64);
        let mut dirty_list: Vec<usize> = mdg_par::scratch::take();
        dirty_list.extend(self.tiling.serpentine().filter(|&t| dirty[t]));
        let replanned: Vec<Option<TilePlan>> = {
            let mut sp = mdg_obs::span("replan_tiles");
            sp.add_items(dirty_list.len() as u64);
            let members = &self.members;
            let tiling = &self.tiling;
            let range = self.range;
            let base = self.cfg.base;
            mdg_par::par_map(dirty_list.len(), |k| {
                let t = dirty_list[k];
                if members[t].is_empty() {
                    None
                } else {
                    Some(plan_tile(
                        sensors,
                        &members[t],
                        range,
                        tiling.tile_center(t),
                        &base,
                    ))
                }
            })
        };
        let mut replanned_stops = 0usize;
        for (k, tp) in replanned.into_iter().enumerate() {
            if let Some(tp) = &tp {
                replanned_stops += tp.stops.len();
            }
            self.tiles[dirty_list[k]] = tp;
        }

        // 4. Re-stitch from the retained sub-tours and polish only the
        //    dirty-adjacent seams.
        self.materialize(sensors, Some(&dirty));
        mdg_par::scratch::put(dirty);
        mdg_par::scratch::put(dirty_list);
        Ok(HierDeltaReport {
            full_rebuild: false,
            dirty_tiles: n_dirty,
            occupied_tiles: self.stats.n_occupied,
            replanned_stops,
        })
    }

    /// Full re-plan of the live field: fresh tiling sized to the live
    /// density, every occupied tile re-planned, all seams polished.
    fn rebuild_full(&mut self, sensors: &[Point], alive: &[bool]) -> Result<(), PlanError> {
        let _sp = mdg_obs::span("rebuild");
        let live: Vec<Point> = sensors
            .iter()
            .zip(alive)
            .filter_map(|(&p, &a)| a.then_some(p))
            .collect();
        let side = tile_side_for(&self.cfg, &live, self.range)?;
        // The tiling is built over every slot (geometry only — dead
        // sensors still anchor their id in the CSR buckets) and the
        // member lists filter to the alive ones.
        let tiling = Tiling::build(sensors, side);
        self.members = (0..tiling.n_tiles())
            .map(|t| {
                tiling
                    .points_in(t)
                    .iter()
                    .copied()
                    .filter(|&g| alive[g as usize])
                    .collect()
            })
            .collect();
        self.tiles = plan_all_tiles(sensors, &tiling, &self.members, self.range, &self.cfg.base);
        self.tiling = tiling;
        self.materialize(sensors, None);
        Ok(())
    }

    /// Rebuilds the materialized [`GatheringPlan`] from the retained
    /// per-tile sub-tours: serpentine stitch, seam touch-up, assignment.
    ///
    /// `dirty`: `None` polishes every seam (cold build / full rebuild);
    /// `Some(mask)` seeds the touch-up only at seam stops whose tour
    /// neighborhood touches a dirty tile.
    fn materialize(&mut self, sensors: &[Point], dirty: Option<&[bool]>) {
        let ordered: Vec<&TilePlan> = self
            .tiling
            .serpentine()
            .filter_map(|t| self.tiles[t].as_ref())
            .collect();
        let n_occupied = ordered.len();
        // The stitch buffers are O(stops) and rebuilt every materialize;
        // scratch-pooling them keeps warm deltas off the allocator for
        // the three biggest temporaries of the re-stitch.
        let mut cycle_pts: Vec<Point> = mdg_par::scratch::take();
        let mut cands: Vec<u32> = mdg_par::scratch::take();
        let mut seam: Vec<bool> = mdg_par::scratch::take();
        let spliced = {
            let _sp = mdg_obs::span("stitch");
            stitch(self.sink, &ordered, &mut cycle_pts, &mut cands, &mut seam)
        };
        mdg_obs::counter("hier/spliced_stops").add(spliced as u64);

        if self.cfg.touch_up && self.cfg.base.improve_passes > 0 && cycle_pts.len() >= 5 {
            let mut sp = mdg_obs::span("touch_up");
            sp.add_items(cycle_pts.len() as u64);
            let m = cands.len();
            let mut seeds: Vec<usize> = mdg_par::scratch::take();
            match dirty {
                None => {
                    // The sink joins two seams; every flagged stop is one.
                    seeds.push(0);
                    seeds.extend(
                        seam.iter()
                            .enumerate()
                            .filter_map(|(k, &s)| s.then_some(k + 1)),
                    );
                }
                Some(mask) => {
                    // Only seams whose tour neighborhood touches a dirty
                    // tile need re-polishing; clean seams were polished
                    // when their tiles last changed.
                    let mut stop_dirty: Vec<bool> = mdg_par::scratch::take_cap(m);
                    stop_dirty.extend(
                        cands
                            .iter()
                            .map(|&c| mask[self.tiling.tile_of(sensors[c as usize])]),
                    );
                    if stop_dirty[0] || stop_dirty[m - 1] {
                        seeds.push(0);
                    }
                    for k in 0..m {
                        if !seam[k] {
                            continue;
                        }
                        let prev = if k == 0 { m - 1 } else { k - 1 };
                        let next = if k + 1 == m { 0 } else { k + 1 };
                        if stop_dirty[k] || stop_dirty[prev] || stop_dirty[next] {
                            seeds.push(k + 1);
                        }
                    }
                    mdg_par::scratch::put(stop_dirty);
                }
            };
            if !seeds.is_empty() {
                let nl = NeighborLists::build(&cycle_pts, TOUCH_UP_NEIGHBORS);
                let tour = two_opt_neighbors_seeded(
                    &cycle_pts,
                    Tour::identity(cycle_pts.len()),
                    &nl,
                    1e-9,
                    &seeds,
                );
                let tour = or_opt_neighbors_seeded(
                    &cycle_pts,
                    tour,
                    &nl,
                    TOUCH_UP_MAX_SEGMENT,
                    1e-9,
                    &seeds,
                );
                let order = tour.order();
                debug_assert_eq!(order[0], 0, "normalized tours lead with the depot");
                let mut new_pts: Vec<Point> = mdg_par::scratch::take_cap(cycle_pts.len());
                new_pts.extend(order.iter().map(|&i| cycle_pts[i]));
                let mut new_cands: Vec<u32> = mdg_par::scratch::take_cap(cands.len());
                new_cands.extend(order[1..].iter().map(|&i| cands[i - 1]));
                mdg_par::scratch::put(std::mem::replace(&mut cycle_pts, new_pts));
                mdg_par::scratch::put(std::mem::replace(&mut cands, new_cands));
            }
            mdg_par::scratch::put(seeds);
        }

        // Assignment: scatter each tile's choices into an id-indexed
        // table (live members partition across tiles, so each slot is
        // written at most once; dead slots stay UNASSIGNED), then map the
        // chosen stop ids to tour positions.
        self.plan = {
            let _sp = mdg_obs::span("assign");
            let n = self.n_sensors;
            // Both id-indexed tables are O(sensors) and rebuilt each
            // materialize; at a million sensors pooling them avoids two
            // multi-megabyte allocations per delta. (The assignment and
            // covered lists leave in the plan, so they stay owned.)
            let mut chosen: Vec<u32> = mdg_par::scratch::take_cap(n);
            chosen.resize(n, u32::MAX);
            for (t, tp) in self.tiles.iter().enumerate() {
                if let Some(tp) = tp {
                    for (i, &g) in self.members[t].iter().enumerate() {
                        chosen[g as usize] = tp.chosen[i];
                    }
                }
            }
            let mut pp_of: Vec<u32> = mdg_par::scratch::take_cap(n);
            pp_of.resize(n, u32::MAX);
            for (k, &c) in cands.iter().enumerate() {
                pp_of[c as usize] = k as u32;
            }
            let assignment: Vec<usize> = chosen
                .iter()
                .map(|&c| {
                    if c == u32::MAX {
                        UNASSIGNED
                    } else {
                        pp_of[c as usize] as usize
                    }
                })
                .collect();
            mdg_par::scratch::put(chosen);
            mdg_par::scratch::put(pp_of);
            let mut covered: Vec<Vec<u32>> = vec![Vec::new(); cands.len()];
            for (s, &k) in assignment.iter().enumerate() {
                if k != UNASSIGNED {
                    covered[k].push(s as u32);
                }
            }
            let polling_points: Vec<PollingPoint> = cands
                .iter()
                .zip(covered)
                .map(|(&c, cov)| PollingPoint {
                    pos: sensors[c as usize],
                    candidate: c as usize,
                    covered: cov,
                })
                .collect();
            GatheringPlan::new(self.sink, polling_points, assignment)
        };
        debug_assert!(
            (self.plan.tour_length - mdg_geom::closed_tour_length(&cycle_pts)).abs() < 1e-6
        );
        mdg_par::scratch::put(cycle_pts);
        mdg_par::scratch::put(cands);
        mdg_par::scratch::put(seam);
        self.stats = HierStats {
            n_tiles: self.tiling.n_tiles(),
            n_occupied,
            spliced_stops: spliced,
            tile_side: self.tiling.side(),
        };
    }
}

/// Resolves the tile side in meters: explicit `tile_cells × range`, or
/// auto-sized so the expected tile population is `target_per_tile`. Auto
/// tiles never drop below `2 × range` — tiles narrower than a coverage
/// disk fragment the cover badly.
fn tile_side_for(cfg: &HierConfig, live: &[Point], range: f64) -> Result<f64, PlanError> {
    if let Some(cells) = cfg.tile_cells {
        if !(cells > 0.0 && cells.is_finite()) {
            return Err(PlanError::Unsupported(format!(
                "tile size must be a positive finite number of range-cells, got {cells}"
            )));
        }
        return Ok(cells * range);
    }
    if live.is_empty() {
        return Ok((2.0 * range).max(1.0));
    }
    let bb = mdg_geom::Aabb::from_points(live).expect("non-empty live set");
    let area = (bb.width() * bb.height()).max(1e-12);
    let target = cfg.target_per_tile.max(1) as f64;
    let side = (target * area / live.len() as f64).sqrt();
    Ok(side.max(2.0 * range))
}

/// Plans every occupied tile (non-empty member list), fanned out across
/// tiles in serpentine order. Each tile is a pure function of its own
/// members; `par_map` preserves order and nested parallel calls inside a
/// tile run inline, so the result is bit-identical at any thread count.
fn plan_all_tiles(
    sensors: &[Point],
    tiling: &Tiling,
    members: &[Vec<u32>],
    range: f64,
    base: &PlannerConfig,
) -> Vec<Option<TilePlan>> {
    let occupied: Vec<usize> = tiling
        .serpentine()
        .filter(|&t| !members[t].is_empty())
        .collect();
    mdg_obs::counter("hier/tiles").add(occupied.len() as u64);
    let planned: Vec<TilePlan> = {
        let mut sp = mdg_obs::span("tiles");
        sp.add_items(occupied.len() as u64);
        mdg_par::par_map(occupied.len(), |k| {
            let t = occupied[k];
            plan_tile(sensors, &members[t], range, tiling.tile_center(t), base)
        })
    };
    let mut tiles: Vec<Option<TilePlan>> = vec![None; tiling.n_tiles()];
    for (k, tp) in planned.into_iter().enumerate() {
        tiles[occupied[k]] = Some(tp);
    }
    tiles
}

/// Plans one tile: local cover → prune → cycle → assignment, mirroring
/// the flat pipeline on a subset instance anchored at the tile center.
fn plan_tile(
    sensors: &[Point],
    subset: &[u32],
    range: f64,
    anchor: Point,
    base: &PlannerConfig,
) -> TilePlan {
    let mut sp = mdg_obs::span("tile");
    sp.add_items(subset.len() as u64);
    let inst = CoverageInstance::sensor_sites_subset(sensors, subset, range);

    // Cover. Sensor-site instances are always feasible (each sensor
    // covers itself), so the selection never fails. Ties break toward
    // the tile center — the local stand-in for the flat planner's sink.
    let (mut selected, cap_assign): (Vec<usize>, Option<Vec<usize>>) =
        if let Some(cap) = base.max_sensors_per_pp {
            let cover =
                capacitated_greedy_cover(&inst, cap, |c| inst.candidates[c].pos.dist_sq(anchor))
                    .expect("sensor-site candidates are always feasible");
            (cover.selected, Some(cover.assignment))
        } else {
            let sel = match base.covering {
                CoveringStrategy::Greedy => {
                    greedy_cover(&inst, |c| inst.candidates[c].pos.dist_sq(anchor))
                        .expect("sensor-site candidates are always feasible")
                }
                CoveringStrategy::TourAware { insertion_weight } => {
                    let cfg = TourAwareConfig {
                        insertion_weight,
                        ..TourAwareConfig::default()
                    };
                    tour_aware_cover(&inst, anchor, &cfg)
                        .expect("sensor-site candidates are always feasible")
                        .selected
                }
            };
            (sel, None)
        };

    // Prune (uncapacitated only, like the flat planner), prioritized by
    // each stop's removal gain in a preliminary tile cycle.
    if cap_assign.is_none() && base.prune && selected.len() > 1 {
        let prelim = cycle_over(&inst, &selected, 0);
        let mut pts: Vec<Point> = mdg_par::scratch::take_cap(prelim.len());
        pts.extend(prelim.iter().map(|&c| inst.candidates[c].pos));
        let m = pts.len();
        let order_of: std::collections::HashMap<usize, usize> =
            prelim.iter().enumerate().map(|(k, &c)| (c, k)).collect();
        let mut gains: Vec<f64> = mdg_par::scratch::take_cap(m);
        gains.extend((0..m).map(|i| {
            let prev = pts[(i + m - 1) % m];
            let next = pts[(i + 1) % m];
            prev.dist(pts[i]) + pts[i].dist(next) - prev.dist(next)
        }));
        selected = prune_cover(&inst, &selected, |c| {
            order_of.get(&c).map_or(0.0, |&k| gains[k])
        });
        mdg_par::scratch::put(pts);
        mdg_par::scratch::put(gains);
    }

    // Final cycle over the tile's stops.
    let cycle_sel = cycle_over(&inst, &selected, base.improve_passes);

    // Tile-local assignment, remapped to cycle order.
    let assign: Vec<usize> = match cap_assign {
        Some(a) => {
            // `a[t]` indexes the pre-tour selection; the tour reordered it.
            let pos_of: std::collections::HashMap<usize, usize> =
                cycle_sel.iter().enumerate().map(|(k, &c)| (c, k)).collect();
            a.iter().map(|&k| pos_of[&selected[k]]).collect()
        }
        None => inst.assign(&cycle_sel).expect("selection is a cover"),
    };
    TilePlan {
        stops: cycle_sel.iter().map(|&c| inst.candidates[c].pos).collect(),
        cands: cycle_sel.iter().map(|&c| subset[c]).collect(),
        chosen: assign.iter().map(|&k| subset[cycle_sel[k]]).collect(),
    }
}

/// Cycle over the selected tile candidates (no depot), in the same
/// dense/sparse regimes as the flat planner. Returns candidate ids in
/// cycle order, rotated so `selected[0]` leads (deterministic).
fn cycle_over(inst: &CoverageInstance, selected: &[usize], improve_passes: usize) -> Vec<usize> {
    let m = selected.len();
    if m <= 2 {
        return selected.to_vec();
    }
    let mut pts: Vec<Point> = mdg_par::scratch::take_cap(m);
    pts.extend(selected.iter().map(|&c| inst.candidates[c].pos));
    let tour = if m <= DENSE_TOUR_LIMIT {
        let cost = MatrixCost::from_points(&pts);
        let tour = mdg_tour::cheapest_insertion(&cost);
        if improve_passes > 0 {
            improve(
                &cost,
                tour,
                &ImproveConfig {
                    max_passes: improve_passes,
                    ..ImproveConfig::default()
                },
            )
        } else {
            tour.normalized()
        }
    } else {
        let cost = mdg_tour::EuclideanCost::new(&pts);
        let tour = mdg_tour::cheapest_insertion(&cost);
        if improve_passes > 0 {
            let nl = NeighborLists::build(&pts, 10);
            improve_neighbors(
                &pts,
                tour,
                &ImproveConfig {
                    max_passes: improve_passes,
                    ..ImproveConfig::default()
                },
                &nl,
            )
        } else {
            tour.normalized()
        }
    };
    let out = tour.order().iter().map(|&i| selected[i]).collect();
    mdg_par::scratch::put(pts);
    out
}

/// Concatenates tile sub-tours into one depot-anchored cycle.
///
/// Tiles arrive in serpentine order, so consecutive sub-tours are
/// spatial neighbors. Each sub-tour with ≥ 3 stops is opened at its
/// longest edge (ties: earliest cycle position) and appended in the
/// orientation whose entry point is nearer the current cycle tail
/// (ties: forward). Sub-tours with 1–2 stops are deferred and spliced
/// individually at their cheapest insertion position — an "empty-ish
/// tile" never panics, it just rides the splice path.
///
/// Writes the cycle into caller-owned buffers (cleared first): `cycle_pts`
/// gets the positions with the sink first, `cands` the global sensor id
/// per stop, `seam` a seam flag per stop. Returns the spliced stop count.
/// Buffer reuse keeps the per-delta re-stitch off the allocator.
fn stitch(
    sink: Point,
    tile_plans: &[&TilePlan],
    cycle_pts: &mut Vec<Point>,
    cands: &mut Vec<u32>,
    seam: &mut Vec<bool>,
) -> usize {
    let total: usize = tile_plans.iter().map(|tp| tp.stops.len()).sum();
    cycle_pts.clear();
    cycle_pts.reserve(total + 1);
    cycle_pts.push(sink);
    cands.clear();
    cands.reserve(total);
    seam.clear();
    seam.reserve(total);
    let mut deferred: Vec<(Point, u32)> = mdg_par::scratch::take();

    let mut path: Vec<usize> = mdg_par::scratch::take();
    for &tp in tile_plans {
        let m = tp.stops.len();
        if m == 0 {
            continue;
        }
        if m <= 2 {
            deferred.extend(tp.stops.iter().copied().zip(tp.cands.iter().copied()));
            continue;
        }
        // Open the sub-tour at its longest edge: the cheapest edge to
        // sacrifice for the two seams this tile contributes.
        let mut cut = 0;
        let mut cut_len = tp.stops[0].dist(tp.stops[1 % m]);
        for i in 1..m {
            let len = tp.stops[i].dist(tp.stops[(i + 1) % m]);
            if len > cut_len {
                cut = i;
                cut_len = len;
            }
        }
        path.clear();
        path.extend((1..=m).map(|j| (cut + j) % m));
        let tail = *cycle_pts.last().expect("cycle starts with the sink");
        if tail.dist(tp.stops[path[m - 1]]) < tail.dist(tp.stops[path[0]]) {
            path.reverse();
        }
        let start = cands.len();
        for &i in &path {
            cycle_pts.push(tp.stops[i]);
            cands.push(tp.cands[i]);
            seam.push(false);
        }
        seam[start] = true;
        *seam.last_mut().expect("just pushed") = true;
    }
    mdg_par::scratch::put(path);

    // Splice the stragglers one by one.
    let spliced = deferred.len();
    for &(p, c) in &deferred {
        let (idx, _) = cheapest_insertion_position(cycle_pts, p);
        cycle_pts.insert(idx, p);
        cands.insert(idx - 1, c);
        seam.insert(idx - 1, true);
        // A splice also perturbs the stops it lands between.
        if idx >= 2 {
            seam[idx - 2] = true;
        }
        if idx < seam.len() {
            seam[idx] = true;
        }
    }
    mdg_par::scratch::put(deferred);
    spliced
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::ShdgPlanner;
    use mdg_net::DeploymentConfig;

    fn net(n: usize, side: f64, seed: u64) -> Network {
        Network::build(DeploymentConfig::uniform(n, side).generate(seed), 30.0)
    }

    #[test]
    fn hier_plan_is_valid_and_covers_everything() {
        let net = net(600, 600.0, 3);
        let (plan, stats) = HierPlanner::with_config(HierConfig {
            tile_cells: Some(6.0), // 180 m tiles → a real multi-tile field
            ..HierConfig::default()
        })
        .plan_with_stats(&net)
        .unwrap();
        plan.validate(&net.deployment.sensors, net.range).unwrap();
        assert!(stats.n_occupied > 1, "field must actually be tiled");
        assert_eq!(plan.assignment.len(), 600);
    }

    #[test]
    fn hier_tracks_flat_quality_on_small_fields() {
        for seed in [1u64, 5, 9] {
            let net = net(500, 500.0, seed);
            let flat = ShdgPlanner::new().plan(&net).unwrap();
            let hier = HierPlanner::with_config(HierConfig {
                tile_cells: Some(5.0),
                ..HierConfig::default()
            })
            .plan(&net)
            .unwrap();
            assert!(
                hier.tour_length <= flat.tour_length * 1.25 + 1e-9,
                "seed {seed}: hier {} vs flat {}",
                hier.tour_length,
                flat.tour_length
            );
        }
    }

    #[test]
    fn single_tile_degenerates_to_near_flat_quality() {
        // Auto sizing on a small field yields one tile; the only
        // structural difference from flat is the tile anchor and the
        // stitched sink, so quality must stay close.
        let net = net(200, 250.0, 11);
        let flat = ShdgPlanner::new().plan(&net).unwrap();
        let (hier, stats) = HierPlanner::new().plan_with_stats(&net).unwrap();
        assert_eq!(stats.n_occupied, 1);
        hier.validate(&net.deployment.sensors, net.range).unwrap();
        assert!(hier.tour_length <= flat.tour_length * 1.25 + 1e-9);
    }

    #[test]
    fn empty_and_tiny_networks() {
        let empty = Network::build(DeploymentConfig::uniform(0, 100.0).generate(1), 30.0);
        let plan = plan_hier(&empty).unwrap();
        assert_eq!(plan.n_polling_points(), 0);
        assert_eq!(plan.tour_length, 0.0);

        let one = Network::build(DeploymentConfig::uniform(1, 100.0).generate(1), 30.0);
        let plan = plan_hier(&one).unwrap();
        plan.validate(&one.deployment.sensors, one.range).unwrap();
        assert_eq!(plan.n_polling_points(), 1);

        let three = Network::build(DeploymentConfig::uniform(3, 400.0).generate(2), 30.0);
        let plan = plan_hier(&three).unwrap();
        plan.validate(&three.deployment.sensors, three.range)
            .unwrap();
    }

    #[test]
    fn sparse_tiles_ride_the_splice_path() {
        // Tiny tiles force many 1–2 stop sub-tours through `stitch`'s
        // deferred splice branch; the plan must still validate.
        let net = net(120, 500.0, 4);
        let (plan, stats) = HierPlanner::with_config(HierConfig {
            tile_cells: Some(2.0), // 60 m tiles over a 500 m field
            ..HierConfig::default()
        })
        .plan_with_stats(&net)
        .unwrap();
        plan.validate(&net.deployment.sensors, net.range).unwrap();
        assert!(stats.spliced_stops > 0, "want the splice path exercised");
    }

    #[test]
    fn empty_tiles_flow_through_stitching_without_panicking() {
        // A tile that selected no polling points (and true empty tiles)
        // must ride through `stitch` as a no-op.
        let sink = Point::new(0.0, 0.0);
        let square = TilePlan {
            stops: vec![
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
                Point::new(20.0, 10.0),
                Point::new(10.0, 10.0),
            ],
            cands: vec![0, 1, 2, 3],
            chosen: vec![],
        };
        let empty = || TilePlan {
            stops: vec![],
            cands: vec![],
            chosen: vec![],
        };
        let (e1, e2, e3) = (empty(), empty(), empty());
        let lone = TilePlan {
            stops: vec![Point::new(30.0, 5.0)],
            cands: vec![4],
            chosen: vec![],
        };
        let (mut pts, mut cands, mut seam) = (Vec::new(), Vec::new(), Vec::new());
        let spliced = stitch(
            sink,
            &[&e1, &square, &e2, &lone, &e3],
            &mut pts,
            &mut cands,
            &mut seam,
        );
        assert_eq!(pts.len(), 6, "sink + 4 square stops + 1 spliced");
        assert_eq!(cands.len(), 5);
        assert_eq!(seam.len(), 5);
        assert_eq!(spliced, 1);
        assert!(cands.contains(&4), "the lone stop was spliced in");

        // All tiles empty: just the sink, nothing spliced (and the
        // out-buffers are cleared of the previous stitch).
        let spliced = stitch(sink, &[&e1], &mut pts, &mut cands, &mut seam);
        assert_eq!(pts, vec![sink]);
        assert!(cands.is_empty());
        assert_eq!(spliced, 0);
    }

    #[test]
    fn grid_candidates_are_rejected() {
        let net = net(50, 200.0, 1);
        let err = HierPlanner::with_config(HierConfig {
            base: PlannerConfig {
                candidates: CandidateMode::Grid { spacing: 20.0 },
                ..PlannerConfig::default()
            },
            ..HierConfig::default()
        })
        .plan(&net)
        .unwrap_err();
        assert!(matches!(err, PlanError::Unsupported(_)));
    }

    #[test]
    fn bad_tile_cells_is_a_clean_error() {
        let net = net(50, 200.0, 1);
        for cells in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = HierPlanner::with_config(HierConfig {
                tile_cells: Some(cells),
                ..HierConfig::default()
            })
            .plan(&net)
            .unwrap_err();
            assert!(matches!(err, PlanError::Unsupported(_)), "cells={cells}");
        }
    }

    #[test]
    fn capacitated_hier_respects_the_buffer_bound() {
        let net = net(300, 400.0, 6);
        let cap = 5;
        let plan = HierPlanner::with_config(HierConfig {
            base: PlannerConfig {
                max_sensors_per_pp: Some(cap),
                ..PlannerConfig::default()
            },
            tile_cells: Some(5.0),
            ..HierConfig::default()
        })
        .plan(&net)
        .unwrap();
        plan.validate(&net.deployment.sensors, net.range).unwrap();
        for pp in &plan.polling_points {
            assert!(pp.covered.len() <= cap, "buffer bound violated");
        }
    }

    #[test]
    fn greedy_covering_works_per_tile() {
        let net = net(400, 450.0, 8);
        let plan = HierPlanner::with_config(HierConfig {
            base: PlannerConfig {
                covering: CoveringStrategy::Greedy,
                ..PlannerConfig::default()
            },
            tile_cells: Some(5.0),
            ..HierConfig::default()
        })
        .plan(&net)
        .unwrap();
        plan.validate(&net.deployment.sensors, net.range).unwrap();
    }

    #[test]
    fn hier_is_deterministic_across_runs() {
        let net = net(700, 600.0, 12);
        let cfg = HierConfig {
            tile_cells: Some(6.0),
            ..HierConfig::default()
        };
        let a = HierPlanner::with_config(cfg).plan(&net).unwrap();
        let b = HierPlanner::with_config(cfg).plan(&net).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn touch_up_never_lengthens_the_stitched_tour() {
        for seed in [2u64, 7, 13] {
            let net = net(500, 550.0, seed);
            let base = HierConfig {
                tile_cells: Some(5.0),
                touch_up: false,
                ..HierConfig::default()
            };
            let raw = HierPlanner::with_config(base).plan(&net).unwrap();
            let polished = HierPlanner::with_config(HierConfig {
                touch_up: true,
                ..base
            })
            .plan(&net)
            .unwrap();
            assert!(
                polished.tour_length <= raw.tour_length + 1e-9,
                "seed {seed}: touch-up lengthened {} -> {}",
                raw.tour_length,
                polished.tour_length
            );
        }
    }

    // ---- retained HierPlan / apply_delta -------------------------------

    /// A multi-tile field with its (initially all-alive) mask.
    fn field(n: usize, side: f64, seed: u64) -> (Vec<Point>, Point, Vec<bool>) {
        let dep = DeploymentConfig::uniform(n, side).generate(seed);
        let alive = vec![true; n];
        (dep.sensors, dep.sink, alive)
    }

    fn multi_tile_cfg() -> HierConfig {
        HierConfig {
            tile_cells: Some(6.0), // 180 m tiles
            ..HierConfig::default()
        }
    }

    #[test]
    fn retained_build_matches_planner_output() {
        let net = net(600, 600.0, 3);
        let cfg = multi_tile_cfg();
        let (via_planner, stats_p) = HierPlanner::with_config(cfg).plan_with_stats(&net).unwrap();
        let hp =
            HierPlan::build(&net.deployment.sensors, net.deployment.sink, net.range, cfg).unwrap();
        assert_eq!(hp.plan(), &via_planner);
        assert_eq!(hp.stats(), stats_p);
        assert!(hp.approx_bytes() > 0);
    }

    #[test]
    fn clustered_death_replans_only_owning_tiles() {
        let (mut_sensors, sink, mut alive) = field(800, 600.0, 3);
        let sensors = mut_sensors;
        let mut hp = HierPlan::build(&sensors, sink, 30.0, multi_tile_cfg()).unwrap();
        assert!(hp.stats().n_occupied > 4, "need a real multi-tile field");

        // Kill the three lowest-id sensors in one corner tile.
        let t0 = hp.tiling.tile_of(sensors[0]);
        let died: Vec<u32> = sensors
            .iter()
            .enumerate()
            .filter(|&(_, &p)| hp.tiling.tile_of(p) == t0)
            .take(3)
            .map(|(s, _)| s as u32)
            .collect();
        assert!(!died.is_empty());
        for &d in &died {
            alive[d as usize] = false;
        }
        let report = hp.apply_delta(&sensors, &alive, &died, None).unwrap();
        assert!(!report.full_rebuild);
        assert_eq!(report.dirty_tiles, 1, "one tile owns all three deaths");
        assert!(report.replanned_stops < hp.plan().n_polling_points());
        hp.plan()
            .validate_live(&sensors, hp.range(), &alive)
            .unwrap();
        assert!(hp.plan().unassigned_sensors(&alive).is_empty());
    }

    #[test]
    fn additions_extend_the_plan_incrementally() {
        let (mut sensors, sink, mut alive) = field(700, 600.0, 5);
        let mut hp = HierPlan::build(&sensors, sink, 30.0, multi_tile_cfg()).unwrap();
        sensors.push(Point::new(300.0, 310.0));
        sensors.push(Point::new(302.0, 308.0));
        alive.extend([true, true]);
        let report = hp.apply_delta(&sensors, &alive, &[], None).unwrap();
        assert!(!report.full_rebuild);
        assert_eq!(report.dirty_tiles, 1, "co-located additions share a tile");
        assert_eq!(hp.plan().assignment.len(), 702);
        hp.plan()
            .validate_live(&sensors, hp.range(), &alive)
            .unwrap();
    }

    #[test]
    fn noop_delta_leaves_the_plan_untouched() {
        let (sensors, sink, alive) = field(500, 500.0, 9);
        let mut hp = HierPlan::build(&sensors, sink, 30.0, multi_tile_cfg()).unwrap();
        let before = hp.plan().clone();
        // Already-dead / unknown ids are tolerated and ignored; a range
        // "change" within tolerance is a no-op too.
        let report = hp.apply_delta(&sensors, &alive, &[], Some(30.0)).unwrap();
        assert!(report.is_noop());
        assert_eq!(hp.plan(), &before);
    }

    #[test]
    fn range_change_escalates_to_full_rebuild() {
        let (sensors, sink, alive) = field(600, 600.0, 4);
        let mut hp = HierPlan::build(&sensors, sink, 30.0, multi_tile_cfg()).unwrap();
        let report = hp.apply_delta(&sensors, &alive, &[], Some(45.0)).unwrap();
        assert!(report.full_rebuild);
        assert_eq!(hp.range(), 45.0);
        hp.plan().validate_live(&sensors, 45.0, &alive).unwrap();
        // The rebuilt plan matches a cold build at the new range exactly.
        let cold = HierPlan::build(&sensors, sink, 45.0, multi_tile_cfg()).unwrap();
        assert_eq!(hp.plan(), cold.plan());
    }

    #[test]
    fn mass_death_escalates_to_full_rebuild() {
        let (sensors, sink, mut alive) = field(600, 600.0, 8);
        let mut hp = HierPlan::build(&sensors, sink, 30.0, multi_tile_cfg()).unwrap();
        // Kill every other sensor — that dirties essentially every tile.
        let died: Vec<u32> = (0..600u32).step_by(2).collect();
        for &d in &died {
            alive[d as usize] = false;
        }
        let report = hp.apply_delta(&sensors, &alive, &died, None).unwrap();
        assert!(report.full_rebuild, "half the field must escalate");
        hp.plan()
            .validate_live(&sensors, hp.range(), &alive)
            .unwrap();
    }

    #[test]
    fn delta_sequence_is_deterministic_across_thread_counts() {
        let run = |threads: usize| {
            mdg_par::set_threads(threads);
            let (mut sensors, sink, mut alive) = field(800, 650.0, 21);
            let mut hp = HierPlan::build(&sensors, sink, 30.0, multi_tile_cfg()).unwrap();
            for round in 0..5u64 {
                let died: Vec<u32> = (0..4u64)
                    .map(|i| ((round * 7919 + i * 104_729) % 800) as u32)
                    .filter(|&d| alive[d as usize])
                    .collect();
                for &d in &died {
                    alive[d as usize] = false;
                }
                if round % 2 == 1 {
                    let g = sensors.len();
                    sensors.push(Point::new(
                        (g as f64 * 37.0) % 650.0,
                        (g as f64 * 53.0) % 650.0,
                    ));
                    alive.push(true);
                }
                hp.apply_delta(&sensors, &alive, &died, None).unwrap();
                hp.plan()
                    .validate_live(&sensors, hp.range(), &alive)
                    .unwrap();
            }
            mdg_par::set_threads(0);
            hp.plan().clone()
        };
        let single = run(1);
        let quad = run(4);
        assert_eq!(single, quad, "delta replans must be thread-invariant");
    }

    #[test]
    fn churned_plan_tracks_a_cold_replan() {
        let (mut sensors, sink, mut alive) = field(900, 700.0, 30);
        let mut hp = HierPlan::build(&sensors, sink, 30.0, multi_tile_cfg()).unwrap();
        for round in 0..8u64 {
            let died: Vec<u32> = (0..5u64)
                .map(|i| ((round * 6151 + i * 92_821) % 900) as u32)
                .filter(|&d| alive[d as usize])
                .collect();
            for &d in &died {
                alive[d as usize] = false;
            }
            let g = sensors.len();
            sensors.push(Point::new(
                (g as f64 * 41.0) % 700.0,
                (g as f64 * 59.0) % 700.0,
            ));
            alive.push(true);
            hp.apply_delta(&sensors, &alive, &died, None).unwrap();
        }
        hp.plan()
            .validate_live(&sensors, hp.range(), &alive)
            .unwrap();
        // Cold re-plan of the live field as the quality yardstick.
        let live: Vec<Point> = sensors
            .iter()
            .zip(&alive)
            .filter_map(|(&p, &a)| a.then_some(p))
            .collect();
        let cold = HierPlan::build(&live, sink, 30.0, multi_tile_cfg()).unwrap();
        assert!(
            hp.plan().tour_length <= cold.plan().tour_length * 1.3 + 1e-9,
            "incremental {} vs cold {}",
            hp.plan().tour_length,
            cold.plan().tour_length
        );
    }

    #[test]
    fn empty_build_grows_via_escalation() {
        let sink = Point::new(50.0, 50.0);
        let mut hp = HierPlan::build(&[], sink, 30.0, HierConfig::default()).unwrap();
        assert_eq!(hp.plan().n_polling_points(), 0);
        let sensors: Vec<Point> = (0..40)
            .map(|i| Point::new((i as f64 * 17.0) % 100.0, (i as f64 * 29.0) % 100.0))
            .collect();
        let alive = vec![true; 40];
        let report = hp.apply_delta(&sensors, &alive, &[], None).unwrap();
        assert!(report.full_rebuild, "growth from empty must re-tile");
        hp.plan()
            .validate_live(&sensors, hp.range(), &alive)
            .unwrap();
        assert_eq!(hp.plan().assignment.len(), 40);
    }
}
