//! Tour-aware greedy covering.
//!
//! The plain greedy cover optimizes only the *number* of polling points;
//! the tour cost of visiting them is an afterthought. The tour-aware
//! variant grows the cover and the tour simultaneously: each step selects
//! the candidate maximizing
//!
//! ```text
//!     newly covered sensors / (ε + cheapest insertion cost into the
//!                                  current partial tour)
//! ```
//!
//! so a candidate that covers slightly fewer sensors but sits right next to
//! the evolving tour wins over a remote one. With `insertion_weight = 0`
//! the rule degrades to plain greedy (used as the A1 ablation).

use mdg_cover::{BitSet, CoverageInstance};
use mdg_geom::Point;

/// Parameters of the tour-aware covering rule.
#[derive(Debug, Clone, Copy)]
pub struct TourAwareConfig {
    /// Weight of the insertion cost in the denominator. `1.0` is the
    /// default; `0.0` disables tour-awareness entirely.
    pub insertion_weight: f64,
    /// Stabilizer added to the denominator (meters) so that zero-cost
    /// insertions do not dominate on gain-1 candidates.
    pub epsilon: f64,
}

impl Default for TourAwareConfig {
    fn default() -> Self {
        TourAwareConfig {
            insertion_weight: 1.0,
            epsilon: 1.0,
        }
    }
}

/// Output of tour-aware covering: the chosen candidates and the greedy
/// insertion order tour (positions include the sink at index 0).
#[derive(Debug, Clone)]
pub struct TourAwareCover {
    /// Selected candidate indices, in selection order.
    pub selected: Vec<usize>,
    /// Partial tour produced by the insertions: candidate indices in tour
    /// order (excluding the sink).
    pub tour_candidates: Vec<usize>,
}

/// Cheapest-insertion delta of `p` into the closed tour `tour` (which
/// includes the sink). For a single-vertex "tour" this is the out-and-back
/// distance.
fn insertion_cost(tour: &[Point], p: Point) -> (usize, f64) {
    debug_assert!(!tour.is_empty());
    if tour.len() == 1 {
        return (1, 2.0 * tour[0].dist(p));
    }
    let mut best_pos = 1;
    let mut best = f64::INFINITY;
    for i in 0..tour.len() {
        let a = tour[i];
        let b = tour[(i + 1) % tour.len()];
        let delta = a.dist(p) + p.dist(b) - a.dist(b);
        if delta < best {
            best = delta;
            best_pos = i + 1;
        }
    }
    (best_pos, best)
}

/// Runs tour-aware greedy covering. Returns `None` if the instance is
/// infeasible.
pub fn tour_aware_cover(
    inst: &CoverageInstance,
    sink: Point,
    cfg: &TourAwareConfig,
) -> Option<TourAwareCover> {
    let n = inst.n_targets();
    let mut covered = BitSet::new(n);
    let mut selected = Vec::new();
    let mut tour_pts: Vec<Point> = vec![sink];
    let mut tour_cands: Vec<usize> = Vec::new(); // parallel to tour_pts[1..]
    let mut remaining = n;

    while remaining > 0 {
        let mut best_cand = usize::MAX;
        let mut best_score = f64::NEG_INFINITY;
        let mut best_gain = 0usize;
        let mut best_ins = (0usize, 0.0f64);
        for (c, cand) in inst.candidates.iter().enumerate() {
            let gain = cand.covers.count_and_not(&covered);
            if gain == 0 {
                continue;
            }
            let (pos, ins) = insertion_cost(&tour_pts, cand.pos);
            let denom = cfg.epsilon + cfg.insertion_weight * ins;
            let score = gain as f64 / denom.max(f64::MIN_POSITIVE);
            let better = score > best_score
                || (score == best_score && gain > best_gain)
                || (score == best_score && gain == best_gain && ins < best_ins.1);
            if better {
                best_score = score;
                best_cand = c;
                best_gain = gain;
                best_ins = (pos, ins);
            }
        }
        if best_cand == usize::MAX {
            return None;
        }
        covered.union_with(&inst.candidates[best_cand].covers);
        selected.push(best_cand);
        tour_pts.insert(best_ins.0, inst.candidates[best_cand].pos);
        tour_cands.insert(best_ins.0 - 1, best_cand);
        remaining = n - covered.count();
    }
    Some(TourAwareCover {
        selected,
        tour_candidates: tour_cands,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_geom::closed_tour_length;

    fn line(xs: &[f64]) -> Vec<Point> {
        xs.iter().map(|&x| Point::new(x, 0.0)).collect()
    }

    #[test]
    fn produces_a_cover() {
        let sensors = line(&[0.0, 10.0, 20.0, 60.0, 70.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        let out =
            tour_aware_cover(&inst, Point::new(35.0, 0.0), &TourAwareConfig::default()).unwrap();
        assert!(inst.is_cover(&out.selected));
        // tour_candidates is a permutation of selected.
        let mut a = out.selected.clone();
        let mut b = out.tour_candidates.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn insertion_cost_basics() {
        let sink = Point::ORIGIN;
        // Single-point tour: out and back.
        let (_, c) = insertion_cost(&[sink], Point::new(3.0, 4.0));
        assert!((c - 10.0).abs() < 1e-12);
        // Inserting a collinear midpoint costs nothing.
        let tour = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let (_, c2) = insertion_cost(&tour, Point::new(5.0, 0.0));
        assert!(c2.abs() < 1e-9);
    }

    #[test]
    fn tour_awareness_prefers_on_route_candidates() {
        // Two gain-equivalent candidates: one on the way, one far off.
        // Sensors: a pair near (50, 0) coverable by candidate at (50, 0)
        // [on the sink—(100,0) axis] or by candidate at (50, 40) [off-axis,
        // also within range of both]. Plus an anchor sensor at (100, 0).
        let sensors = vec![
            Point::new(45.0, 0.0),
            Point::new(55.0, 0.0),
            Point::new(50.0, 35.0), // near the off-axis candidate
            Point::new(100.0, 0.0),
        ];
        let inst = CoverageInstance::sensor_sites(&sensors, 40.0);
        let sink = Point::ORIGIN;
        let aware = tour_aware_cover(&inst, sink, &TourAwareConfig::default()).unwrap();
        let blind = tour_aware_cover(
            &inst,
            sink,
            &TourAwareConfig {
                insertion_weight: 0.0,
                epsilon: 1.0,
            },
        )
        .unwrap();
        // Both must cover; the aware tour must be no longer than the blind
        // one on this construction.
        assert!(inst.is_cover(&aware.selected));
        assert!(inst.is_cover(&blind.selected));
        let tour_len = |cands: &[usize]| {
            let mut pts = vec![sink];
            pts.extend(cands.iter().map(|&c| inst.candidates[c].pos));
            closed_tour_length(&pts)
        };
        assert!(tour_len(&aware.tour_candidates) <= tour_len(&blind.tour_candidates) + 1e-9);
    }

    #[test]
    fn zero_weight_reduces_to_plain_greedy_count() {
        let sensors = line(&[0.0, 8.0, 16.0, 24.0, 32.0, 80.0, 88.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 9.0);
        let blind = tour_aware_cover(
            &inst,
            Point::new(44.0, 0.0),
            &TourAwareConfig {
                insertion_weight: 0.0,
                epsilon: 1.0,
            },
        )
        .unwrap();
        let greedy = mdg_cover::greedy_cover(&inst, |_| 0.0).unwrap();
        // Same number of polling points (selection order may differ only
        // on ties).
        assert_eq!(blind.selected.len(), greedy.len());
    }

    #[test]
    fn infeasible_returns_none() {
        let sensors = vec![Point::new(33.0, 33.0)];
        let inst =
            CoverageInstance::grid_candidates(&sensors, &mdg_geom::Aabb::square(100.0), 50.0, 5.0);
        assert!(tour_aware_cover(&inst, Point::ORIGIN, &TourAwareConfig::default()).is_none());
    }

    #[test]
    fn empty_instance_yields_empty_cover() {
        let inst = CoverageInstance::sensor_sites(&[], 10.0);
        let out = tour_aware_cover(&inst, Point::ORIGIN, &TourAwareConfig::default()).unwrap();
        assert!(out.selected.is_empty());
        assert!(out.tour_candidates.is_empty());
    }
}
