//! Tour-aware greedy covering.
//!
//! The plain greedy cover optimizes only the *number* of polling points;
//! the tour cost of visiting them is an afterthought. The tour-aware
//! variant grows the cover and the tour simultaneously: each step selects
//! the candidate maximizing
//!
//! ```text
//!     newly covered sensors / (ε + cheapest insertion cost into the
//!                                  current partial tour)
//! ```
//!
//! so a candidate that covers slightly fewer sensors but sits right next to
//! the evolving tour wins over a remote one. With `insertion_weight = 0`
//! the rule degrades to plain greedy (used as the A1 ablation).

use mdg_cover::{BitSet, CoverageInstance};
use mdg_geom::Point;

/// Parameters of the tour-aware covering rule.
#[derive(Debug, Clone, Copy)]
pub struct TourAwareConfig {
    /// Weight of the insertion cost in the denominator. `1.0` is the
    /// default; `0.0` disables tour-awareness entirely.
    pub insertion_weight: f64,
    /// Stabilizer added to the denominator (meters) so that zero-cost
    /// insertions do not dominate on gain-1 candidates.
    pub epsilon: f64,
}

impl Default for TourAwareConfig {
    fn default() -> Self {
        TourAwareConfig {
            insertion_weight: 1.0,
            epsilon: 1.0,
        }
    }
}

/// Output of tour-aware covering: the chosen candidates and the greedy
/// insertion order tour (positions include the sink at index 0).
#[derive(Debug, Clone)]
pub struct TourAwareCover {
    /// Selected candidate indices, in selection order.
    pub selected: Vec<usize>,
    /// Partial tour produced by the insertions: candidate indices in tour
    /// order (excluding the sink).
    pub tour_candidates: Vec<usize>,
}

/// Cheapest-insertion delta of `p` into the closed tour `tour` (which
/// includes the sink). For a single-vertex "tour" this is the out-and-back
/// distance.
fn insertion_cost(tour: &[Point], p: Point) -> (usize, f64) {
    debug_assert!(!tour.is_empty());
    if tour.len() == 1 {
        return (1, 2.0 * tour[0].dist(p));
    }
    let mut best_pos = 1;
    let mut best = f64::INFINITY;
    for i in 0..tour.len() {
        let a = tour[i];
        let b = tour[(i + 1) % tour.len()];
        let delta = a.dist(p) + p.dist(b) - a.dist(b);
        if delta < best {
            best = delta;
            best_pos = i + 1;
        }
    }
    (best_pos, best)
}

/// Sentinel node id for the sink in the incremental tour bookkeeping.
const SINK: usize = usize::MAX;

/// Cheapest-insertion cache entry for one candidate: the delta and the
/// tour node (SINK or candidate id) the insertion edge starts at. One
/// struct per candidate so the cache updates run as disjoint mutable
/// slabs under `mdg_par::par_chunks_mut`.
#[derive(Debug, Clone, Copy)]
struct InsEntry {
    delta: f64,
    after: usize,
}

/// Running argmax of the tour-aware selection rule. The fold over chunk
/// winners uses the exact strict-better predicate of the sequential scan,
/// so combining per-chunk results in chunk order reproduces the full
/// left-to-right scan bit-for-bit.
#[derive(Debug, Clone, Copy)]
struct BestCand {
    cand: usize,
    score: f64,
    gain: usize,
    ins: f64,
}

impl BestCand {
    const NONE: BestCand = BestCand {
        cand: usize::MAX,
        score: f64::NEG_INFINITY,
        gain: 0,
        ins: 0.0,
    };

    /// The reference scan's replacement rule: strictly better score, or
    /// equal score with strictly more gain, or equal both with strictly
    /// cheaper insertion. Earlier index wins all exact ties, which is what
    /// makes the chunked fold order-equivalent to one sequential pass.
    #[inline]
    fn beats(&self, other: &BestCand) -> bool {
        self.score > other.score
            || (self.score == other.score && self.gain > other.gain)
            || (self.score == other.score && self.gain == other.gain && self.ins < other.ins)
    }
}

/// Fixed chunk sizes for the parallel stages. Chunk boundaries depend only
/// on the candidate count — never on the thread count — so the work
/// decomposition (and hence every float and tie decision) is identical at
/// any `MDG_THREADS`.
const SCAN_CHUNK: usize = 2048;
const CACHE_CHUNK: usize = 4096;

/// Runs tour-aware greedy covering. Returns `None` if the instance is
/// infeasible.
///
/// Incremental implementation of the same selection rule as
/// [`tour_aware_cover_reference`] (the original full-rescan version, kept
/// as the executable specification):
///
/// * **Gains** are maintained through an inverted index (target → covering
///   candidates): selecting a candidate decrements the gain of every
///   candidate sharing one of its newly covered targets, instead of
///   recounting every candidate's bitset each step.
/// * **Insertion costs** are cached per candidate as `(edge, delta)`,
///   keyed by the tour node the edge starts at. Inserting a point splits
///   exactly one tour edge: candidates cached on that edge are rescanned
///   in full, all others just probe the two new edges (their cached
///   minimum over surviving edges stays valid).
///
/// Both caches reproduce the reference's arithmetic bit-for-bit, so the
/// selections — and the greedy insertion tour — come out identical. The
/// only divergence window is a candidate whose cheapest insertion delta is
/// *exactly* tied (to the last bit) across distinct tour edges, where the
/// reference keeps the earliest tour position and the cache may keep the
/// edge it found first; non-degenerate geometry never produces such ties.
pub fn tour_aware_cover(
    inst: &CoverageInstance,
    sink: Point,
    cfg: &TourAwareConfig,
) -> Option<TourAwareCover> {
    let n = inst.n_targets();
    let n_cands = inst.n_candidates();
    let mut sp = mdg_obs::span("tour_aware");
    sp.add_items(n_cands as u64);
    // Cache-maintenance counters, bumped from mdg-par worker slabs (each
    // slab accumulates locally and flushes once — pure observation, so the
    // bit-identical-plan invariant is untouched).
    let ctr_rescans = mdg_obs::counter("tour_aware/cache_rescans");
    let ctr_probes = mdg_obs::counter("tour_aware/cache_probes");
    let mut covered = BitSet::new(n);
    let mut selected = Vec::new();
    // `selected`/`tour_cands` leave in the result; everything else below
    // is per-call working state drawn from the thread's scratch pool —
    // this routine runs once per dirty tile per delta in the hierarchical
    // planner, so its working set is reused rather than reallocated.
    let mut tour_pts: Vec<Point> = mdg_par::scratch::take();
    tour_pts.push(sink);
    let mut tour_cands: Vec<usize> = Vec::new(); // parallel to tour_pts[1..]
    let mut tour_nodes: Vec<usize> = mdg_par::scratch::take(); // candidate ids, parallel to tour_pts
    tour_nodes.push(SINK);
    let mut remaining = n;

    // Inverted index in CSR form: candidates covering each target.
    let mut inv_starts: Vec<u32> = mdg_par::scratch::take_cap(n + 1);
    inv_starts.resize(n + 1, 0);
    for cand in &inst.candidates {
        for t in cand.covers.iter_ones() {
            inv_starts[t + 1] += 1;
        }
    }
    for t in 0..n {
        inv_starts[t + 1] += inv_starts[t];
    }
    let mut inv: Vec<u32> = mdg_par::scratch::take_cap(inv_starts[n] as usize);
    inv.resize(inv_starts[n] as usize, 0);
    let mut cursor: Vec<u32> = mdg_par::scratch::take_cap(n + 1);
    cursor.extend_from_slice(&inv_starts);
    for (c, cand) in inst.candidates.iter().enumerate() {
        for t in cand.covers.iter_ones() {
            inv[cursor[t] as usize] = c as u32;
            cursor[t] += 1;
        }
    }

    let mut gain: Vec<usize> = mdg_par::scratch::take_cap(n_cands);
    gain.extend(inst.candidates.iter().map(|c| c.covers.count()));
    // Cheapest-insertion cache, valid while the tour has ≥ 2 points.
    // Sized exactly up front: the selection loop hands disjoint slabs of
    // it to `par_chunks_mut`, so it must never grow mid-run.
    let mut cache: Vec<InsEntry> = mdg_par::scratch::take_cap(n_cands);
    cache.resize(
        n_cands,
        InsEntry {
            delta: f64::INFINITY,
            after: SINK,
        },
    );
    let cache_cap = cache.capacity();
    let point_of = |id: usize, inst: &CoverageInstance| -> Point {
        if id == SINK {
            sink
        } else {
            inst.candidates[id].pos
        }
    };
    // Position-order rescan mirroring `insertion_cost`: strict `<`, so the
    // earliest tour position wins ties, exactly as the reference scans.
    let rescan = |p: Point, tour_pts: &[Point], tour_nodes: &[usize]| -> (f64, usize) {
        let mut best = f64::INFINITY;
        let mut after = SINK;
        for i in 0..tour_pts.len() {
            let a = tour_pts[i];
            let b = tour_pts[(i + 1) % tour_pts.len()];
            let delta = a.dist(p) + p.dist(b) - a.dist(b);
            if delta < best {
                best = delta;
                after = tour_nodes[i];
            }
        }
        (best, after)
    };

    while remaining > 0 {
        let single = tour_pts.len() == 1;
        // Parallel selection scan: each fixed chunk computes its local
        // argmax with the sequential predicate, then the chunk winners
        // fold left-to-right with the same predicate (see [`BestCand`]).
        let best = mdg_par::par_reduce(
            n_cands,
            SCAN_CHUNK,
            |range| {
                let mut acc = BestCand::NONE;
                for c in range {
                    let g = gain[c];
                    if g == 0 {
                        continue;
                    }
                    let ins = if single {
                        2.0 * sink.dist(inst.candidates[c].pos)
                    } else {
                        cache[c].delta
                    };
                    let denom = cfg.epsilon + cfg.insertion_weight * ins;
                    let score = g as f64 / denom.max(f64::MIN_POSITIVE);
                    let contender = BestCand {
                        cand: c,
                        score,
                        gain: g,
                        ins,
                    };
                    if contender.beats(&acc) {
                        acc = contender;
                    }
                }
                acc
            },
            |a, b| if b.beats(&a) { b } else { a },
        )
        .unwrap_or(BestCand::NONE);
        if best.cand == usize::MAX {
            return None;
        }
        let w = best.cand;
        let w_pt = inst.candidates[w].pos;

        // Update gains through the inverted index before marking covered.
        for t in inst.candidates[w].covers.iter_ones() {
            if !covered.get(t) {
                for &c2 in &inv[inv_starts[t] as usize..inv_starts[t + 1] as usize] {
                    gain[c2 as usize] -= 1;
                }
            }
        }
        covered.union_with(&inst.candidates[w].covers);
        selected.push(w);
        remaining = n - covered.count();

        // Splice the winner into the tour after its cached edge start.
        let after = if single { SINK } else { cache[w].after };
        let pos = tour_nodes
            .iter()
            .position(|&id| id == after)
            .expect("cached edge start is on the tour")
            + 1;
        tour_pts.insert(pos, w_pt);
        tour_cands.insert(pos - 1, w);
        tour_nodes.insert(pos, w);

        if remaining == 0 {
            break;
        }
        if single {
            // 1 → 2 transition: both edges of the two-point tour have
            // bitwise-equal deltas, so the reference's strict `<` keeps
            // position 0 — the edge leaving the sink. Each cache entry is
            // a pure function of its own candidate, so the slabs run in
            // parallel.
            mdg_par::par_chunks_mut(&mut cache, CACHE_CHUNK, |start, slab| {
                for (k, e) in slab.iter_mut().enumerate() {
                    let c = start + k;
                    if gain[c] == 0 {
                        continue;
                    }
                    let p = inst.candidates[c].pos;
                    *e = InsEntry {
                        delta: sink.dist(p) + p.dist(w_pt) - sink.dist(w_pt),
                        after: SINK,
                    };
                }
            });
        } else {
            // Edge (after, b) was split into (after, w) and (w, b).
            // Cache invariant: `cache[c].delta` is the true minimum over
            // all tour edges, so if the split edge held a candidate's
            // unique minimum its anchor necessarily pointed there
            // (rescanned below); any tied or worse surviving edge keeps
            // the cached value valid, and the two probes cover the new
            // edges. Candidates update independently — parallel slabs.
            let a_pt = point_of(after, inst);
            let b = tour_nodes[(pos + 1) % tour_nodes.len()];
            let b_pt = point_of(b, inst);
            mdg_par::par_chunks_mut(&mut cache, CACHE_CHUNK, |start, slab| {
                let mut rescans = 0u64;
                let mut probes = 0u64;
                for (k, e) in slab.iter_mut().enumerate() {
                    let c = start + k;
                    if gain[c] == 0 {
                        continue;
                    }
                    if e.after == after {
                        rescans += 1;
                        let (best, anchor) = rescan(inst.candidates[c].pos, &tour_pts, &tour_nodes);
                        *e = InsEntry {
                            delta: best,
                            after: anchor,
                        };
                    } else {
                        probes += 1;
                        let p = inst.candidates[c].pos;
                        let d1 = a_pt.dist(p) + p.dist(w_pt) - a_pt.dist(w_pt);
                        if d1 < e.delta {
                            *e = InsEntry { delta: d1, after };
                        }
                        let d2 = w_pt.dist(p) + p.dist(b_pt) - w_pt.dist(b_pt);
                        if d2 < e.delta {
                            *e = InsEntry {
                                delta: d2,
                                after: w,
                            };
                        }
                    }
                }
                ctr_rescans.add(rescans);
                ctr_probes.add(probes);
            });
        }
    }
    debug_assert_eq!(
        cache.capacity(),
        cache_cap,
        "insertion-cache slab must be sized up front"
    );
    mdg_par::scratch::put(tour_pts);
    mdg_par::scratch::put(tour_nodes);
    mdg_par::scratch::put(inv_starts);
    mdg_par::scratch::put(inv);
    mdg_par::scratch::put(cursor);
    mdg_par::scratch::put(gain);
    mdg_par::scratch::put(cache);
    Some(TourAwareCover {
        selected,
        tour_candidates: tour_cands,
    })
}

/// The original full-rescan tour-aware covering: every step recounts every
/// candidate's gain and rescans the whole tour for its cheapest insertion
/// (`O(steps · candidates · (targets/64 + tour))`). Kept as the executable
/// specification for [`tour_aware_cover`] and the equivalence suite.
pub fn tour_aware_cover_reference(
    inst: &CoverageInstance,
    sink: Point,
    cfg: &TourAwareConfig,
) -> Option<TourAwareCover> {
    let n = inst.n_targets();
    let mut covered = BitSet::new(n);
    let mut selected = Vec::new();
    let mut tour_pts: Vec<Point> = vec![sink];
    let mut tour_cands: Vec<usize> = Vec::new(); // parallel to tour_pts[1..]
    let mut remaining = n;

    while remaining > 0 {
        let mut best_cand = usize::MAX;
        let mut best_score = f64::NEG_INFINITY;
        let mut best_gain = 0usize;
        let mut best_ins = (0usize, 0.0f64);
        for (c, cand) in inst.candidates.iter().enumerate() {
            let gain = cand.covers.count_and_not(&covered);
            if gain == 0 {
                continue;
            }
            let (pos, ins) = insertion_cost(&tour_pts, cand.pos);
            let denom = cfg.epsilon + cfg.insertion_weight * ins;
            let score = gain as f64 / denom.max(f64::MIN_POSITIVE);
            let better = score > best_score
                || (score == best_score && gain > best_gain)
                || (score == best_score && gain == best_gain && ins < best_ins.1);
            if better {
                best_score = score;
                best_cand = c;
                best_gain = gain;
                best_ins = (pos, ins);
            }
        }
        if best_cand == usize::MAX {
            return None;
        }
        covered.union_with(&inst.candidates[best_cand].covers);
        selected.push(best_cand);
        tour_pts.insert(best_ins.0, inst.candidates[best_cand].pos);
        tour_cands.insert(best_ins.0 - 1, best_cand);
        remaining = n - covered.count();
    }
    Some(TourAwareCover {
        selected,
        tour_candidates: tour_cands,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_geom::closed_tour_length;

    fn line(xs: &[f64]) -> Vec<Point> {
        xs.iter().map(|&x| Point::new(x, 0.0)).collect()
    }

    #[test]
    fn produces_a_cover() {
        let sensors = line(&[0.0, 10.0, 20.0, 60.0, 70.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        let out =
            tour_aware_cover(&inst, Point::new(35.0, 0.0), &TourAwareConfig::default()).unwrap();
        assert!(inst.is_cover(&out.selected));
        // tour_candidates is a permutation of selected.
        let mut a = out.selected.clone();
        let mut b = out.tour_candidates.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn insertion_cost_basics() {
        let sink = Point::ORIGIN;
        // Single-point tour: out and back.
        let (_, c) = insertion_cost(&[sink], Point::new(3.0, 4.0));
        assert!((c - 10.0).abs() < 1e-12);
        // Inserting a collinear midpoint costs nothing.
        let tour = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let (_, c2) = insertion_cost(&tour, Point::new(5.0, 0.0));
        assert!(c2.abs() < 1e-9);
    }

    #[test]
    fn tour_awareness_prefers_on_route_candidates() {
        // Two gain-equivalent candidates: one on the way, one far off.
        // Sensors: a pair near (50, 0) coverable by candidate at (50, 0)
        // [on the sink—(100,0) axis] or by candidate at (50, 40) [off-axis,
        // also within range of both]. Plus an anchor sensor at (100, 0).
        let sensors = vec![
            Point::new(45.0, 0.0),
            Point::new(55.0, 0.0),
            Point::new(50.0, 35.0), // near the off-axis candidate
            Point::new(100.0, 0.0),
        ];
        let inst = CoverageInstance::sensor_sites(&sensors, 40.0);
        let sink = Point::ORIGIN;
        let aware = tour_aware_cover(&inst, sink, &TourAwareConfig::default()).unwrap();
        let blind = tour_aware_cover(
            &inst,
            sink,
            &TourAwareConfig {
                insertion_weight: 0.0,
                epsilon: 1.0,
            },
        )
        .unwrap();
        // Both must cover; the aware tour must be no longer than the blind
        // one on this construction.
        assert!(inst.is_cover(&aware.selected));
        assert!(inst.is_cover(&blind.selected));
        let tour_len = |cands: &[usize]| {
            let mut pts = vec![sink];
            pts.extend(cands.iter().map(|&c| inst.candidates[c].pos));
            closed_tour_length(&pts)
        };
        assert!(tour_len(&aware.tour_candidates) <= tour_len(&blind.tour_candidates) + 1e-9);
    }

    #[test]
    fn zero_weight_reduces_to_plain_greedy_count() {
        let sensors = line(&[0.0, 8.0, 16.0, 24.0, 32.0, 80.0, 88.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 9.0);
        let blind = tour_aware_cover(
            &inst,
            Point::new(44.0, 0.0),
            &TourAwareConfig {
                insertion_weight: 0.0,
                epsilon: 1.0,
            },
        )
        .unwrap();
        let greedy = mdg_cover::greedy_cover(&inst, |_| 0.0).unwrap();
        // Same number of polling points (selection order may differ only
        // on ties).
        assert_eq!(blind.selected.len(), greedy.len());
    }

    #[test]
    fn incremental_matches_reference_on_random_fields() {
        use rand::{Rng, SeedableRng};
        for seed in 0..20u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(20..120);
            let side = 150.0;
            let sensors: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
                .collect();
            let inst = CoverageInstance::sensor_sites(&sensors, rng.gen_range(15.0..40.0));
            let sink = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            for cfg in [
                TourAwareConfig::default(),
                TourAwareConfig {
                    insertion_weight: 0.3,
                    epsilon: 0.5,
                },
                TourAwareConfig {
                    insertion_weight: 0.0,
                    epsilon: 1.0,
                },
            ] {
                let fast = tour_aware_cover(&inst, sink, &cfg).unwrap();
                let slow = tour_aware_cover_reference(&inst, sink, &cfg).unwrap();
                assert_eq!(fast.selected, slow.selected, "seed {seed}");
                assert_eq!(fast.tour_candidates, slow.tour_candidates, "seed {seed}");
            }
        }
    }

    #[test]
    fn infeasible_returns_none() {
        let sensors = vec![Point::new(33.0, 33.0)];
        let inst =
            CoverageInstance::grid_candidates(&sensors, &mdg_geom::Aabb::square(100.0), 50.0, 5.0);
        assert!(tour_aware_cover(&inst, Point::ORIGIN, &TourAwareConfig::default()).is_none());
    }

    #[test]
    fn empty_instance_yields_empty_cover() {
        let inst = CoverageInstance::sensor_sites(&[], 10.0);
        let out = tour_aware_cover(&inst, Point::ORIGIN, &TourAwareConfig::default()).unwrap();
        assert!(out.selected.is_empty());
        assert!(out.tour_candidates.is_empty());
    }
}
