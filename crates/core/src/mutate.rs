//! In-place mutation of a [`GatheringPlan`] — the substrate for online
//! plan repair (`mdg-runtime`).
//!
//! A live plan evolves as nodes die: polling points are removed (orphaning
//! the sensors they served), replacement points are spliced in, and the
//! visiting order is permuted after tour polishing. Every operation keeps
//! `tour_length` consistent and the `covered` lists in sync with
//! `assignment`.
//!
//! Sensors without a current polling point carry the sentinel
//! [`UNASSIGNED`] in `assignment`. [`GatheringPlan::validate`] rejects such
//! plans (it demands total coverage); use
//! [`GatheringPlan::validate_live`] to check a plan against the sensors
//! that are still alive.

use crate::plan::{GatheringPlan, PollingPoint};
use mdg_geom::Point;

/// `assignment` sentinel for a sensor not currently served by any polling
/// point (dead, or orphaned and awaiting repair).
pub const UNASSIGNED: usize = usize::MAX;

impl GatheringPlan {
    /// Drops dead sensors from every `covered` list and marks them
    /// [`UNASSIGNED`]. Returns the number of entries removed.
    pub fn drop_dead_sensors(&mut self, alive: &[bool]) -> usize {
        assert_eq!(alive.len(), self.assignment.len(), "alive mask size");
        let mut removed = 0;
        for pp in &mut self.polling_points {
            let before = pp.covered.len();
            pp.covered.retain(|&s| alive[s as usize]);
            removed += before - pp.covered.len();
        }
        for (s, a) in self.assignment.iter_mut().enumerate() {
            if !alive[s] {
                *a = UNASSIGNED;
            }
        }
        removed
    }

    /// Removes polling point `k` from the tour. Its covered sensors become
    /// [`UNASSIGNED`] orphans; assignments past `k` shift down; the tour
    /// length is recomputed. Returns the removed point and the orphaned
    /// sensor ids.
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn remove_polling_point(&mut self, k: usize) -> (PollingPoint, Vec<u32>) {
        assert!(
            k < self.polling_points.len(),
            "polling point {k} out of range"
        );
        let pp = self.polling_points.remove(k);
        let orphans = pp.covered.clone();
        for a in &mut self.assignment {
            if *a == UNASSIGNED {
                continue;
            }
            if *a == k {
                *a = UNASSIGNED;
            } else if *a > k {
                *a -= 1;
            }
        }
        self.refresh_tour_length();
        (pp, orphans)
    }

    /// Inserts `pp` at tour position `k` (visited after `k-1`, before the
    /// old `k`). Its `covered` sensors are assigned to it; assignments at
    /// or past `k` shift up; the tour length is recomputed.
    ///
    /// # Panics
    /// Panics if `k > n_polling_points()`, a covered sensor id is out of
    /// range, or a covered sensor is already assigned elsewhere.
    pub fn insert_polling_point(&mut self, k: usize, pp: PollingPoint) {
        assert!(
            k <= self.polling_points.len(),
            "insert position {k} out of range"
        );
        for a in &mut self.assignment {
            if *a != UNASSIGNED && *a >= k {
                *a += 1;
            }
        }
        for &s in &pp.covered {
            let slot = self
                .assignment
                .get_mut(s as usize)
                .unwrap_or_else(|| panic!("covered sensor {s} out of range"));
            assert_eq!(*slot, UNASSIGNED, "sensor {s} is already assigned");
            *slot = k;
        }
        self.polling_points.insert(k, pp);
        self.refresh_tour_length();
    }

    /// Assigns the currently-unassigned sensor `s` to polling point `k`
    /// (orphan adoption — reassignment at zero tour cost). The caller is
    /// responsible for `s` being within range of the point.
    ///
    /// # Panics
    /// Panics if `s` or `k` is out of range, or `s` is already assigned.
    pub fn assign_sensor(&mut self, s: usize, k: usize) {
        assert!(
            k < self.polling_points.len(),
            "polling point {k} out of range"
        );
        let slot = &mut self.assignment[s];
        assert_eq!(*slot, UNASSIGNED, "sensor {s} is already assigned");
        *slot = k;
        self.polling_points[k].covered.push(s as u32);
    }

    /// Live sensors currently not served by any polling point.
    pub fn unassigned_sensors(&self, alive: &[bool]) -> Vec<usize> {
        assert_eq!(alive.len(), self.assignment.len(), "alive mask size");
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(s, &a)| alive[s] && a == UNASSIGNED)
            .map(|(s, _)| s)
            .collect()
    }

    /// Permutes the polling points into a new visiting order:
    /// `order[new_pos] = old_pos`. Assignments are remapped and the tour
    /// length recomputed.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..n_polling_points()`.
    pub fn reorder_polling_points(&mut self, order: &[usize]) {
        let n = self.polling_points.len();
        assert_eq!(order.len(), n, "order must cover every polling point");
        let mut new_of_old = vec![UNASSIGNED; n];
        for (new_pos, &old_pos) in order.iter().enumerate() {
            assert!(old_pos < n, "order entry {old_pos} out of range");
            assert_eq!(
                new_of_old[old_pos], UNASSIGNED,
                "duplicate order entry {old_pos}"
            );
            new_of_old[old_pos] = new_pos;
        }
        let old = std::mem::take(&mut self.polling_points);
        let mut slots: Vec<Option<PollingPoint>> = old.into_iter().map(Some).collect();
        self.polling_points = order
            .iter()
            .map(|&o| slots[o].take().expect("permutation checked above"))
            .collect();
        for a in &mut self.assignment {
            if *a != UNASSIGNED {
                *a = new_of_old[*a];
            }
        }
        self.refresh_tour_length();
    }

    /// Recomputes `tour_length` from the current polling-point order.
    pub fn refresh_tour_length(&mut self) {
        self.tour_length = mdg_geom::closed_tour_length(&self.tour_positions());
    }

    /// Validates the plan against the *live* part of the deployment: every
    /// live sensor assigned to an in-range polling point, `covered` lists
    /// consistent with `assignment` (for live sensors), and the stored
    /// tour length fresh. Dead sensors may be [`UNASSIGNED`] or still
    /// carry a stale assignment; both are accepted.
    pub fn validate_live(
        &self,
        sensors: &[Point],
        range: f64,
        alive: &[bool],
    ) -> Result<(), String> {
        if self.assignment.len() != sensors.len() || alive.len() != sensors.len() {
            return Err(format!(
                "assignment/alive cover {}/{} sensors, deployment has {}",
                self.assignment.len(),
                alive.len(),
                sensors.len()
            ));
        }
        for (s, &pp) in self.assignment.iter().enumerate() {
            if !alive[s] {
                continue;
            }
            if pp == UNASSIGNED {
                return Err(format!("live sensor {s} is unassigned"));
            }
            let pp_ref = self
                .polling_points
                .get(pp)
                .ok_or_else(|| format!("sensor {s} assigned to missing polling point {pp}"))?;
            let d = sensors[s].dist(pp_ref.pos);
            if d > range + 1e-9 {
                return Err(format!(
                    "live sensor {s} is {d:.2} m from its polling point (range {range} m)"
                ));
            }
            if !pp_ref.covered.contains(&(s as u32)) {
                return Err(format!(
                    "polling point {pp} does not list live sensor {s} as covered"
                ));
            }
        }
        let recomputed = mdg_geom::closed_tour_length(&self.tour_positions());
        if (recomputed - self.tour_length).abs() > 1e-6 {
            return Err(format!(
                "stored tour length {} != recomputed {}",
                self.tour_length, recomputed
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three polling points on a line, five sensors.
    fn plan_and_sensors() -> (GatheringPlan, Vec<Point>) {
        let sensors = vec![
            Point::new(0.0, 10.0),
            Point::new(5.0, 10.0),
            Point::new(20.0, 10.0),
            Point::new(40.0, 10.0),
            Point::new(42.0, 10.0),
        ];
        let pps = vec![
            PollingPoint {
                pos: Point::new(0.0, 10.0),
                candidate: 0,
                covered: vec![0, 1],
            },
            PollingPoint {
                pos: Point::new(20.0, 10.0),
                candidate: 2,
                covered: vec![2],
            },
            PollingPoint {
                pos: Point::new(40.0, 10.0),
                candidate: 3,
                covered: vec![3, 4],
            },
        ];
        let plan = GatheringPlan::new(Point::new(20.0, 0.0), pps, vec![0, 0, 1, 2, 2]);
        (plan, sensors)
    }

    #[test]
    fn remove_orphans_and_shifts() {
        let (mut plan, sensors) = plan_and_sensors();
        let (pp, orphans) = plan.remove_polling_point(1);
        assert_eq!(pp.candidate, 2);
        assert_eq!(orphans, vec![2]);
        assert_eq!(plan.assignment, vec![0, 0, UNASSIGNED, 1, 1]);
        assert_eq!(plan.unassigned_sensors(&[true; 5]), vec![2]);
        let expect = mdg_geom::closed_tour_length(&plan.tour_positions());
        assert!((plan.tour_length - expect).abs() < 1e-12);
        // Live validation fails while the orphan is unserved...
        assert!(plan.validate_live(&sensors, 10.0, &[true; 5]).is_err());
        // ...and passes if the orphan is dead.
        let alive = [true, true, false, true, true];
        plan.validate_live(&sensors, 10.0, &alive).unwrap();
    }

    #[test]
    fn insert_assigns_and_shifts() {
        let (mut plan, sensors) = plan_and_sensors();
        let (_, orphans) = plan.remove_polling_point(1);
        assert_eq!(orphans, vec![2]);
        plan.insert_polling_point(
            1,
            PollingPoint {
                pos: Point::new(21.0, 10.0),
                candidate: 99,
                covered: vec![2],
            },
        );
        assert_eq!(plan.assignment, vec![0, 0, 1, 2, 2]);
        plan.validate_live(&sensors, 10.0, &[true; 5]).unwrap();
        assert!(plan.unassigned_sensors(&[true; 5]).is_empty());
    }

    #[test]
    #[should_panic(expected = "already assigned")]
    fn double_assignment_rejected() {
        let (mut plan, _) = plan_and_sensors();
        plan.insert_polling_point(
            0,
            PollingPoint {
                pos: Point::ORIGIN,
                candidate: 9,
                covered: vec![2],
            },
        );
    }

    #[test]
    fn drop_dead_sensors_cleans_cover_lists() {
        let (mut plan, sensors) = plan_and_sensors();
        let alive = [true, false, true, true, false];
        assert_eq!(plan.drop_dead_sensors(&alive), 2);
        assert_eq!(plan.polling_points[0].covered, vec![0]);
        assert_eq!(plan.polling_points[2].covered, vec![3]);
        assert_eq!(plan.assignment[1], UNASSIGNED);
        assert_eq!(plan.assignment[4], UNASSIGNED);
        plan.validate_live(&sensors, 10.0, &alive).unwrap();
        // The full validator rejects the now-partial plan.
        assert!(plan.validate(&sensors, 10.0).is_err());
    }

    #[test]
    fn reorder_remaps_assignment() {
        let (mut plan, sensors) = plan_and_sensors();
        plan.reorder_polling_points(&[2, 0, 1]);
        assert_eq!(plan.polling_points[0].candidate, 3);
        assert_eq!(plan.assignment, vec![1, 1, 2, 0, 0]);
        plan.validate_live(&sensors, 10.0, &[true; 5]).unwrap();
    }

    #[test]
    #[should_panic(expected = "duplicate order entry")]
    fn reorder_rejects_non_permutation() {
        let (mut plan, _) = plan_and_sensors();
        plan.reorder_polling_points(&[0, 0, 1]);
    }

    #[test]
    fn remove_all_points_leaves_everyone_orphaned() {
        let (mut plan, _) = plan_and_sensors();
        while plan.n_polling_points() > 0 {
            plan.remove_polling_point(0);
        }
        assert_eq!(plan.tour_length, 0.0);
        assert_eq!(plan.unassigned_sensors(&[true; 5]).len(), 5);
    }
}
