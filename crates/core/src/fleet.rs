//! Multi-collector planning: splitting a data-gathering plan across a
//! fleet of M-collectors to meet a latency deadline.
//!
//! For large fields, one collector's round can exceed the application's
//! data-gathering deadline (the collector moves at ~1 m/s). The paper's
//! extension deploys several M-collectors, each serving a subset of the
//! polling points on its own sink-anchored sub-tour. Two strategies are
//! provided:
//!
//! * [`plan_fleet`] / [`plan_fleet_for_deadline`]: split the global tour
//!   (Frederickson-style packing over the tour order, binary-searching the
//!   makespan) — the primary method.
//! * [`plan_fleet_angular`]: partition polling points into `k` angular
//!   sectors around the sink and plan each sector independently — the A3
//!   ablation alternative.

use crate::hier::HierPlan;
use crate::plan::GatheringPlan;
use mdg_geom::{closed_tour_length, Point};
use mdg_tour::{plan_tour, split_into_k, EuclideanCost, MatrixCost, Tour};
use serde::{Deserialize, Serialize};

/// One collector's assignment in a fleet plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectorTour {
    /// Indices into the source plan's `polling_points`, in visiting order.
    pub polling_points: Vec<usize>,
    /// Closed sub-tour length (sink → points… → sink) in meters.
    pub length: f64,
    /// Number of sensors served on this sub-tour.
    pub sensors_served: usize,
}

impl CollectorTour {
    /// Collection time of this sub-tour at `speed_mps` with `upload_secs`
    /// pause per served sensor.
    pub fn collection_time(&self, speed_mps: f64, upload_secs: f64) -> f64 {
        assert!(speed_mps > 0.0, "collector speed must be positive");
        self.length / speed_mps + upload_secs * self.sensors_served as f64
    }
}

/// A fleet plan: one sub-tour per collector. All collectors depart the sink
/// simultaneously; the round finishes when the slowest returns (makespan).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetPlan {
    /// Sub-tours, one per collector.
    pub collectors: Vec<CollectorTour>,
}

impl FleetPlan {
    /// Number of collectors deployed.
    pub fn n_collectors(&self) -> usize {
        self.collectors.len()
    }

    /// Longest sub-tour length.
    pub fn max_length(&self) -> f64 {
        self.collectors.iter().map(|c| c.length).fold(0.0, f64::max)
    }

    /// Sum of sub-tour lengths (total fleet travel).
    pub fn total_length(&self) -> f64 {
        self.collectors.iter().map(|c| c.length).sum()
    }

    /// Round makespan: the slowest collector's collection time.
    pub fn makespan(&self, speed_mps: f64, upload_secs: f64) -> f64 {
        self.collectors
            .iter()
            .map(|c| c.collection_time(speed_mps, upload_secs))
            .fold(0.0, f64::max)
    }

    /// Checks the fleet partitions the plan's polling points exactly.
    pub fn validate(&self, plan: &GatheringPlan) -> Result<(), String> {
        let mut seen = vec![false; plan.n_polling_points()];
        for (k, c) in self.collectors.iter().enumerate() {
            for &pp in &c.polling_points {
                if pp >= seen.len() {
                    return Err(format!("collector {k} visits unknown polling point {pp}"));
                }
                if seen[pp] {
                    return Err(format!("polling point {pp} visited by two collectors"));
                }
                seen[pp] = true;
            }
        }
        if let Some(miss) = seen.iter().position(|&s| !s) {
            return Err(format!("polling point {miss} not visited by any collector"));
        }
        Ok(())
    }
}

/// Builds the cost matrix over the plan's tour (sink = city 0, polling
/// point `i` = city `i + 1`) and the identity tour in plan order.
fn plan_cost_and_tour(plan: &GatheringPlan) -> (MatrixCost, Tour) {
    let pts = plan.tour_positions();
    let cost = MatrixCost::from_points(&pts);
    (cost, Tour::identity(pts.len()))
}

fn materialize(plan: &GatheringPlan, splits: Vec<mdg_tour::SplitTour>) -> FleetPlan {
    let collectors = splits
        .into_iter()
        .map(|st| {
            let polling_points: Vec<usize> = st.cities.iter().map(|&c| c - 1).collect();
            let sensors_served = polling_points
                .iter()
                .map(|&pp| plan.polling_points[pp].covered.len())
                .sum();
            CollectorTour {
                polling_points,
                length: st.length,
                sensors_served,
            }
        })
        .collect();
    FleetPlan { collectors }
}

/// Splits `plan` across exactly `k` collectors (fewer if fewer suffice for
/// the same makespan), minimizing the longest sub-tour.
pub fn plan_fleet(plan: &GatheringPlan, k: usize) -> FleetPlan {
    let (cost, tour) = plan_cost_and_tour(plan);
    materialize(plan, split_into_k(&cost, &tour, k))
}

/// Like [`plan_fleet`], but without materializing the `O(m²)` distance
/// matrix: edge costs are evaluated on demand from the coordinates, so
/// the split works on plans with hundreds of thousands of stops (a
/// hierarchical plan at n=1M has ~10⁵ polling points; the dense matrix
/// would need ~100 GB). Produces bit-identical fleets to [`plan_fleet`]
/// — both compute the same [`mdg_geom::Point::dist`] values, the matrix
/// path just caches them.
pub fn plan_fleet_streamed(plan: &GatheringPlan, k: usize) -> FleetPlan {
    let pts = plan.tour_positions();
    let cost = EuclideanCost::new(&pts);
    materialize(plan, split_into_k(&cost, &Tour::identity(pts.len()), k))
}

/// Splits a retained hierarchical plan across `k` collectors by feeding
/// its stitched stop sequence — the tile sub-tours in serpentine order —
/// straight into the Frederickson split, with no intermediate cost
/// matrix. This is the fleet path that scales with [`HierPlan`]: the
/// split is `O(m log)` time and `O(m)` memory in the stop count.
pub fn plan_fleet_hier(hier: &HierPlan, k: usize) -> FleetPlan {
    plan_fleet_streamed(hier.plan(), k)
}

/// Finds the smallest fleet whose round completes within
/// `deadline_secs` (travel at `speed_mps` plus `upload_secs` per sensor).
/// Returns `None` if even a dedicated collector per polling point misses
/// the deadline (some point is too far, or its uploads alone take too
/// long).
/// ```
/// use mdg_core::{fleet::plan_fleet_for_deadline, ShdgPlanner};
/// use mdg_net::{DeploymentConfig, Network};
///
/// let net = Network::build(DeploymentConfig::uniform(150, 300.0).generate(7), 30.0);
/// let plan = ShdgPlanner::new().plan(&net).unwrap();
/// let single_round = plan.collection_time(1.0, 0.5);
/// // Halving the deadline needs a (validated) multi-collector fleet.
/// let fleet = plan_fleet_for_deadline(&plan, single_round / 2.0, 1.0, 0.5).unwrap();
/// assert!(fleet.n_collectors() >= 2);
/// assert!(fleet.makespan(1.0, 0.5) <= single_round / 2.0);
/// ```
pub fn plan_fleet_for_deadline(
    plan: &GatheringPlan,
    deadline_secs: f64,
    speed_mps: f64,
    upload_secs: f64,
) -> Option<FleetPlan> {
    assert!(deadline_secs > 0.0, "deadline must be positive");
    assert!(speed_mps > 0.0, "speed must be positive");
    let (cost, tour) = plan_cost_and_tour(plan);
    if plan.n_polling_points() == 0 {
        return Some(FleetPlan {
            collectors: Vec::new(),
        });
    }
    // Upload pauses differ per polling point, so a pure length bound is
    // inexact. Conservative reduction: a sub-tour serving a set S of
    // points needs time len/speed + upload·sensors(S). We greedily pack in
    // tour order with the exact time accounting, binary-searching nothing:
    // the deadline itself is the budget.
    let order = {
        let o = tour.order();
        debug_assert_eq!(o[0], 0);
        o[1..].to_vec()
    };
    let mut collectors: Vec<CollectorTour> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut path_len = 0.0;
    let mut sensors = 0usize;
    let time_of = |len: f64, sensors: usize| len / speed_mps + upload_secs * sensors as f64;
    for &city in &order {
        let pp = city - 1;
        let pp_sensors = plan.polling_points[pp].covered.len();
        // Infeasible even alone?
        let solo = time_of(2.0 * cost_cost(&cost, 0, city), pp_sensors);
        if solo > deadline_secs + 1e-9 {
            return None;
        }
        let ext_len = if current.is_empty() {
            cost_cost(&cost, 0, city)
        } else {
            path_len + cost_cost(&cost, *current.last().unwrap() + 1, city)
        };
        let closed = ext_len + cost_cost(&cost, city, 0);
        if time_of(closed, sensors + pp_sensors) <= deadline_secs + 1e-9 {
            current.push(pp);
            path_len = ext_len;
            sensors += pp_sensors;
        } else {
            collectors.push(close_subtour(plan, &cost, std::mem::take(&mut current)));
            current.push(pp);
            path_len = cost_cost(&cost, 0, city);
            sensors = pp_sensors;
        }
    }
    if !current.is_empty() {
        collectors.push(close_subtour(plan, &cost, current));
    }
    Some(FleetPlan { collectors })
}

#[inline]
fn cost_cost(cost: &MatrixCost, i: usize, j: usize) -> f64 {
    use mdg_tour::CostMatrix;
    cost.cost(i, j)
}

fn close_subtour(plan: &GatheringPlan, cost: &MatrixCost, pps: Vec<usize>) -> CollectorTour {
    let mut length = 0.0;
    if let Some((&first, _)) = pps.split_first() {
        length += cost_cost(cost, 0, first + 1);
        for w in pps.windows(2) {
            length += cost_cost(cost, w[0] + 1, w[1] + 1);
        }
        length += cost_cost(cost, pps.last().unwrap() + 1, 0);
    }
    let sensors_served = pps
        .iter()
        .map(|&pp| plan.polling_points[pp].covered.len())
        .sum();
    CollectorTour {
        polling_points: pps,
        length,
        sensors_served,
    }
}

/// Angular-partition fleet planning (ablation A3): polling points are
/// bucketed into `k` equal angular sectors around the sink and each
/// sector's tour is planned independently. Empty sectors get no collector.
pub fn plan_fleet_angular(plan: &GatheringPlan, k: usize) -> FleetPlan {
    assert!(k > 0, "need at least one sector");
    let sink = plan.sink;
    let mut sectors: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, pp) in plan.polling_points.iter().enumerate() {
        let v = pp.pos - sink;
        // atan2 ∈ (-π, π]; map into [0, τ).
        let mut a = v.angle();
        if a < 0.0 {
            a += std::f64::consts::TAU;
        }
        let sector = ((a / std::f64::consts::TAU * k as f64) as usize).min(k - 1);
        sectors[sector].push(i);
    }
    let collectors = sectors
        .into_iter()
        .filter(|s| !s.is_empty())
        .map(|pps| {
            // Plan this sector's own tour: sink + its points.
            let mut pts: Vec<Point> = Vec::with_capacity(pps.len() + 1);
            pts.push(sink);
            pts.extend(pps.iter().map(|&i| plan.polling_points[i].pos));
            let cost = MatrixCost::from_points(&pts);
            let tour = plan_tour(&cost);
            let order = tour.order();
            debug_assert_eq!(order[0], 0);
            let polling_points: Vec<usize> = order[1..].iter().map(|&c| pps[c - 1]).collect();
            let tour_pts: Vec<Point> = order.iter().map(|&c| pts[c]).collect();
            let length = closed_tour_length(&tour_pts);
            let sensors_served = polling_points
                .iter()
                .map(|&pp| plan.polling_points[pp].covered.len())
                .sum();
            CollectorTour {
                polling_points,
                length,
                sensors_served,
            }
        })
        .collect();
    FleetPlan { collectors }
}

/// Best-of-both fleet planning: runs both [`plan_fleet`] (tour splitting,
/// provable bound) and [`plan_fleet_angular`] (sector re-planning, often
/// shorter in practice — see ablation A3) for the same `k`, and returns
/// whichever achieves the smaller makespan-relevant maximum sub-tour.
pub fn plan_fleet_best(plan: &GatheringPlan, k: usize) -> FleetPlan {
    let split = plan_fleet(plan, k);
    let angular = plan_fleet_angular(plan, k);
    // Angular may use fewer sectors than k (empty sectors); both are
    // valid — compare on the bottleneck sub-tour.
    if angular.max_length() < split.max_length() {
        angular
    } else {
        split
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::ShdgPlanner;
    use mdg_net::{DeploymentConfig, Network};

    fn plan(n: usize, side: f64, range: f64, seed: u64) -> (GatheringPlan, Network) {
        let net = Network::build(DeploymentConfig::uniform(n, side).generate(seed), range);
        (ShdgPlanner::new().plan(&net).unwrap(), net)
    }

    #[test]
    fn single_collector_fleet_equals_plan() {
        let (p, _) = plan(100, 200.0, 30.0, 1);
        let fleet = plan_fleet(&p, 1);
        assert_eq!(fleet.n_collectors(), 1);
        assert!((fleet.max_length() - p.tour_length).abs() < 1e-6);
        fleet.validate(&p).unwrap();
        assert_eq!(fleet.collectors[0].sensors_served, p.n_sensors());
    }

    #[test]
    fn fleet_partitions_polling_points() {
        let (p, _) = plan(150, 300.0, 30.0, 3);
        for k in [2, 3, 5] {
            let fleet = plan_fleet(&p, k);
            fleet.validate(&p).unwrap();
            assert!(fleet.n_collectors() <= k);
            let served: usize = fleet.collectors.iter().map(|c| c.sensors_served).sum();
            assert_eq!(served, p.n_sensors());
        }
    }

    #[test]
    fn makespan_decreases_with_fleet_size() {
        let (p, _) = plan(200, 400.0, 30.0, 5);
        let m1 = plan_fleet(&p, 1).makespan(1.0, 0.0);
        let m3 = plan_fleet(&p, 3).makespan(1.0, 0.0);
        let m6 = plan_fleet(&p, 6).makespan(1.0, 0.0);
        assert!(m3 <= m1 + 1e-9);
        assert!(m6 <= m3 + 1e-9);
        assert!(
            m6 < m1,
            "a 6-collector fleet must beat one collector on a 400 m field"
        );
    }

    #[test]
    fn deadline_planning_meets_deadline() {
        let (p, _) = plan(150, 300.0, 30.0, 7);
        let speed = 1.0;
        let upload = 1.0;
        let single_time = p.collection_time(speed, upload);
        for frac in [0.3, 0.5, 0.8] {
            let deadline = single_time * frac;
            let fleet = plan_fleet_for_deadline(&p, deadline, speed, upload).unwrap();
            fleet.validate(&p).unwrap();
            assert!(
                fleet.makespan(speed, upload) <= deadline + 1e-6,
                "deadline {deadline} violated: {}",
                fleet.makespan(speed, upload)
            );
            assert!(
                fleet.n_collectors() >= 2,
                "a {frac} deadline needs more than one collector"
            );
        }
    }

    #[test]
    fn deadline_collector_count_is_monotone() {
        let (p, _) = plan(120, 300.0, 30.0, 11);
        let single = p.collection_time(1.0, 1.0);
        let mut prev = usize::MAX;
        for frac in [0.25, 0.4, 0.6, 0.9, 1.1] {
            let fleet = plan_fleet_for_deadline(&p, single * frac, 1.0, 1.0).unwrap();
            assert!(
                fleet.n_collectors() <= prev,
                "looser deadline needs no more collectors"
            );
            prev = fleet.n_collectors();
        }
        assert_eq!(
            prev, 1,
            "a deadline above the single-collector time needs one collector"
        );
    }

    #[test]
    fn impossible_deadline_is_none() {
        let (p, _) = plan(50, 300.0, 30.0, 2);
        // No collector can serve the farthest point in 1 second.
        assert!(plan_fleet_for_deadline(&p, 1.0, 1.0, 0.0).is_none());
    }

    #[test]
    fn angular_partition_covers_everything() {
        let (p, _) = plan(150, 300.0, 30.0, 13);
        for k in [2, 4, 8] {
            let fleet = plan_fleet_angular(&p, k);
            fleet.validate(&p).unwrap();
            assert!(fleet.n_collectors() <= k);
        }
    }

    #[test]
    fn best_of_both_dominates_each() {
        let (p, _) = plan(200, 350.0, 30.0, 19);
        for k in [2, 4, 6] {
            let best = plan_fleet_best(&p, k);
            best.validate(&p).unwrap();
            let split = plan_fleet(&p, k);
            let angular = plan_fleet_angular(&p, k);
            assert!(best.max_length() <= split.max_length() + 1e-9, "k={k}");
            assert!(best.max_length() <= angular.max_length() + 1e-9, "k={k}");
        }
    }

    #[test]
    fn empty_plan_fleet() {
        let (p, _) = plan(0, 100.0, 30.0, 1);
        assert_eq!(plan_fleet(&p, 3).n_collectors(), 0);
        let fleet = plan_fleet_for_deadline(&p, 10.0, 1.0, 1.0).unwrap();
        assert_eq!(fleet.n_collectors(), 0);
        assert_eq!(fleet.makespan(1.0, 1.0), 0.0);
        plan_fleet_angular(&p, 4).validate(&p).unwrap();
    }

    #[test]
    fn streamed_split_is_bit_identical_to_matrix_split() {
        // The matrix path caches pairwise distances; the streamed path
        // recomputes them. Same arithmetic, so the fleets — membership,
        // order, and float lengths — must match exactly.
        for seed in [1u64, 3, 9] {
            let (p, _) = plan(180, 350.0, 30.0, seed);
            for k in [1, 2, 4, 7] {
                let dense = plan_fleet(&p, k);
                let streamed = plan_fleet_streamed(&p, k);
                assert_eq!(dense, streamed, "seed {seed} k={k}");
            }
        }
    }

    #[test]
    fn hier_fleet_partitions_a_tiled_plan() {
        use crate::hier::{HierConfig, HierPlan};
        let net = Network::build(DeploymentConfig::uniform(700, 600.0).generate(5), 30.0);
        let hp = HierPlan::build(
            &net.deployment.sensors,
            net.deployment.sink,
            net.range,
            HierConfig {
                tile_cells: Some(6.0),
                ..HierConfig::default()
            },
        )
        .unwrap();
        for k in [2, 4] {
            let fleet = plan_fleet_hier(&hp, k);
            fleet.validate(hp.plan()).unwrap();
            assert!(fleet.n_collectors() <= k);
            let served: usize = fleet.collectors.iter().map(|c| c.sensors_served).sum();
            assert_eq!(served, hp.plan().n_sensors());
            // And it is exactly the generic split of the same plan.
            assert_eq!(fleet, plan_fleet(hp.plan(), k));
        }
    }

    #[test]
    fn collector_time_accounts_uploads() {
        let (p, _) = plan(80, 200.0, 30.0, 17);
        let fleet = plan_fleet(&p, 2);
        for c in &fleet.collectors {
            let t = c.collection_time(2.0, 3.0);
            assert!((t - (c.length / 2.0 + 3.0 * c.sensors_served as f64)).abs() < 1e-9);
        }
    }
}
