//! Large-field invariant check: plans produced through the fast paths
//! (lazy-greedy cover, grid-backed queries, sparse neighbor-list tour
//! polish) must still satisfy the single-hop coverage invariant — every
//! sensor within transmission range of its assigned polling point, every
//! polling point's `covered` list consistent, tour length self-consistent.
//!
//! Release builds run the full `scale`-sized 20 000-sensor field; debug
//! builds (the default `cargo test`) use a 2 000-sensor field so the suite
//! stays fast without optimizations.

use mdg_core::ShdgPlanner;
use mdg_net::{DeploymentConfig, Network};

#[cfg(not(debug_assertions))]
const N: usize = 20_000;
#[cfg(debug_assertions)]
const N: usize = 2_000;

#[test]
fn scale_sized_plan_satisfies_single_hop_coverage() {
    let range = 30.0;
    let side = (N as f64).sqrt() * 10.0;
    let net = Network::build(DeploymentConfig::uniform(N, side).generate(42), range);
    let plan = ShdgPlanner::new().plan(&net).expect("field is feasible");

    // `validate` checks the full invariant: complete assignment, every
    // upload within `range`, covered-lists consistent, tour length equal
    // to the recomputed closed tour.
    plan.validate(&net.deployment.sensors, range)
        .unwrap_or_else(|e| panic!("n = {N}: invariant violated: {e}"));

    assert!(plan.n_polling_points() >= 1);
    assert!(
        plan.n_polling_points() < N,
        "covering must compress: {} polling points for {N} sensors",
        plan.n_polling_points()
    );
    // Tour starts and ends at the sink.
    let tour = plan.tour_positions();
    assert_eq!(tour.first(), Some(&net.deployment.sink));
}
