//! Property-based tests for the SHDG planner and fleet planning.

use mdg_core::{
    exact_plan, plan_fleet, plan_fleet_for_deadline, CoveringStrategy, PlanMetrics, PlannerConfig,
    ShdgPlanner,
};
use mdg_geom::hull_perimeter;
use mdg_net::{DeploymentConfig, Network};
use proptest::prelude::*;

fn arb_net() -> impl Strategy<Value = Network> {
    (5usize..120, 80.0..350.0f64, 20.0..50.0f64, any::<u64>()).prop_map(|(n, side, r, seed)| {
        Network::build(DeploymentConfig::uniform(n, side).generate(seed), r)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn plans_are_always_valid(net in arb_net()) {
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        prop_assert!(plan.validate(&net.deployment.sensors, net.range).is_ok());
        // Upload distances respect the transmission range.
        let m = PlanMetrics::of(&plan, &net.deployment.sensors);
        prop_assert!(m.max_upload_dist <= net.range + 1e-9);
        // Tour length respects the hull lower bound of its own vertices.
        prop_assert!(plan.tour_length + 1e-6 >= hull_perimeter(&plan.tour_positions()));
    }

    #[test]
    fn visiting_all_sensors_is_never_shorter(net in arb_net()) {
        // The SHDG tour visits a subset of sensor sites; a tour through
        // ALL sensor sites (plus sink) is at least as long after equal
        // polish. This is the headline "aggregation shortens the tour"
        // property, checked via the planner run with range so small each
        // sensor is its own polling point.
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        let all = Network::build(net.deployment.clone(), 1e-3);
        let visit_all = ShdgPlanner::new().plan(&all).unwrap();
        prop_assert!(plan.tour_length <= visit_all.tour_length + 1e-6,
            "subset tour {} vs visit-all {}", plan.tour_length, visit_all.tour_length);
    }

    #[test]
    fn greedy_and_tour_aware_both_cover(net in arb_net()) {
        for covering in [CoveringStrategy::Greedy, CoveringStrategy::TourAware { insertion_weight: 1.0 }] {
            let cfg = PlannerConfig { covering, ..PlannerConfig::default() };
            let plan = ShdgPlanner::with_config(cfg).plan(&net).unwrap();
            prop_assert!(plan.validate(&net.deployment.sensors, net.range).is_ok());
        }
    }

    #[test]
    fn fleet_splits_partition_and_shrink_makespan(net in arb_net(), k in 1usize..6) {
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        let fleet = plan_fleet(&plan, k);
        prop_assert!(fleet.validate(&plan).is_ok());
        prop_assert!(fleet.n_collectors() <= k.max(1));
        prop_assert!(fleet.max_length() <= plan.tour_length + 1e-6 ||
            fleet.n_collectors() == 1);
        let served: usize = fleet.collectors.iter().map(|c| c.sensors_served).sum();
        prop_assert_eq!(served, plan.n_sensors());
    }

    #[test]
    fn deadline_fleets_meet_their_deadline(net in arb_net(), frac in 0.3..1.5f64) {
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        if plan.n_polling_points() == 0 { return Ok(()); }
        let speed = 1.0;
        let upload = 0.5;
        let deadline = plan.collection_time(speed, upload) * frac;
        if let Some(fleet) = plan_fleet_for_deadline(&plan, deadline, speed, upload) {
            prop_assert!(fleet.validate(&plan).is_ok());
            prop_assert!(fleet.makespan(speed, upload) <= deadline + 1e-6);
        } else {
            // Only possible when some solo polling point misses the
            // deadline outright.
            let impossible = plan.polling_points.iter().any(|pp| {
                2.0 * plan.sink.dist(pp.pos) / speed + upload * pp.covered.len() as f64
                    > deadline
            });
            prop_assert!(impossible, "None returned though all points fit solo");
        }
    }

    #[test]
    fn exact_plan_lower_bounds_heuristic(seed in any::<u64>()) {
        let net = Network::build(DeploymentConfig::uniform(10, 70.0).generate(seed), 25.0);
        let exact = exact_plan(&net).unwrap();
        let heur = ShdgPlanner::new().plan(&net).unwrap();
        prop_assert!(exact.tour_length <= heur.tour_length + 1e-6);
        prop_assert!(exact.validate(&net.deployment.sensors, net.range).is_ok());
        // The exact tour also respects the hull bound over sensors ∪ sink…
        prop_assert!(exact.tour_length + 1e-6 >= hull_perimeter(&exact.tour_positions()));
    }
}
