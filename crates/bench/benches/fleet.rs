//! Bench for experiment F9/A3: multi-collector planning.
//! (`experiments f9` / `a3` regenerate the fleet tables.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdg_core::{fleet, ShdgPlanner};
use mdg_net::{DeploymentConfig, Network};

fn bench(c: &mut Criterion) {
    let net = Network::build(DeploymentConfig::uniform(400, 400.0).generate(42), 30.0);
    let plan = ShdgPlanner::new().plan(&net).unwrap();
    let single = plan.collection_time(1.0, 0.5);

    let mut g = c.benchmark_group("f9_fleet");
    for &k in &[2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("split_into_k", k), &k, |b, &k| {
            b.iter(|| fleet::plan_fleet(&plan, k).max_length())
        });
        g.bench_with_input(BenchmarkId::new("angular", k), &k, |b, &k| {
            b.iter(|| fleet::plan_fleet_angular(&plan, k).max_length())
        });
    }
    g.bench_function("deadline_half", |b| {
        b.iter(|| {
            fleet::plan_fleet_for_deadline(&plan, single * 0.5, 1.0, 0.5).map(|f| f.n_collectors())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
