//! Bench for experiment F2: SHDG planning across transmission ranges.
//! (`experiments f2` regenerates the figure's data series.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdg_core::ShdgPlanner;
use mdg_net::{DeploymentConfig, Network};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f2_tour_vs_r");
    let dep = DeploymentConfig::uniform(200, 200.0).generate(42);
    for &r in &[20.0f64, 35.0, 50.0] {
        let net = Network::build(dep.clone(), r);
        g.bench_with_input(BenchmarkId::new("shdg_plan", r as u64), &net, |b, net| {
            b.iter(|| ShdgPlanner::new().plan(net).unwrap().tour_length)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
