//! Bench for ablation A2: tour constructors on a polling-point instance.
//! (`experiments a2` regenerates the ablation table.)

use criterion::{criterion_group, criterion_main, Criterion};
use mdg_core::ShdgPlanner;
use mdg_net::{DeploymentConfig, Network};
use mdg_tour::{
    cheapest_insertion, christofides_like, greedy_edge, improve, mst_2approx, nearest_neighbor,
    ImproveConfig, MatrixCost,
};

fn bench(c: &mut Criterion) {
    let net = Network::build(DeploymentConfig::uniform(400, 300.0).generate(42), 30.0);
    let plan = ShdgPlanner::new().plan(&net).unwrap();
    let pts = plan.tour_positions();
    let cost = MatrixCost::from_points(&pts);

    let mut g = c.benchmark_group("a2_tsp");
    g.bench_function("nearest_neighbor", |b| {
        b.iter(|| nearest_neighbor(&cost).length(&cost))
    });
    g.bench_function("greedy_edge", |b| {
        b.iter(|| greedy_edge(&cost).length(&cost))
    });
    g.bench_function("cheapest_insertion", |b| {
        b.iter(|| cheapest_insertion(&cost).length(&cost))
    });
    g.bench_function("mst_2approx", |b| {
        b.iter(|| mst_2approx(&cost).length(&cost))
    });
    g.bench_function("christofides_like", |b| {
        b.iter(|| christofides_like(&cost).length(&cost))
    });
    g.bench_function("ci_plus_improve", |b| {
        b.iter(|| {
            improve(&cost, cheapest_insertion(&cost), &ImproveConfig::default()).length(&cost)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
