//! Bench for experiment F1: SHDG planning cost as the sensor count grows.
//! (`experiments f1` regenerates the figure's data series.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdg_core::ShdgPlanner;
use mdg_net::{DeploymentConfig, Network};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f1_tour_vs_n");
    for &n in &[100usize, 300, 500] {
        let net = Network::build(DeploymentConfig::uniform(n, 200.0).generate(42), 30.0);
        g.bench_with_input(BenchmarkId::new("shdg_plan", n), &net, |b, net| {
            b.iter(|| ShdgPlanner::new().plan(net).unwrap().tour_length)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
