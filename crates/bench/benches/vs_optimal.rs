//! Bench for experiment T1/E1: exact SHDGP solving versus the heuristic on
//! small instances. (`experiments t1` regenerates the gap table.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdg_core::{exact_plan, ShdgPlanner};
use mdg_net::{DeploymentConfig, Network};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_vs_optimal");
    for &n in &[10usize, 14, 16] {
        let net = Network::build(DeploymentConfig::uniform(n, 70.0).generate(42), 25.0);
        g.bench_with_input(BenchmarkId::new("exact", n), &net, |b, net| {
            b.iter(|| exact_plan(net).unwrap().tour_length)
        });
        g.bench_with_input(BenchmarkId::new("heuristic", n), &net, |b, net| {
            b.iter(|| ShdgPlanner::new().plan(net).unwrap().tour_length)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
