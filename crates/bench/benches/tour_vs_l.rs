//! Bench for experiment F3: SHDG planning across field sizes.
//! (`experiments f3` regenerates the figure's data series.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdg_core::ShdgPlanner;
use mdg_net::{DeploymentConfig, Network};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f3_tour_vs_l");
    for &side in &[100.0f64, 300.0, 500.0] {
        let net = Network::build(DeploymentConfig::uniform(400, side).generate(42), 30.0);
        g.bench_with_input(
            BenchmarkId::new("shdg_plan", side as u64),
            &net,
            |b, net| b.iter(|| ShdgPlanner::new().plan(net).unwrap().tour_length),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
