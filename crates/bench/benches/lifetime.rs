//! Bench for experiment F7: lifetime simulation throughput.
//! (`experiments f7` regenerates the lifetime table.)

use criterion::{criterion_group, criterion_main, Criterion};
use mdg_core::ShdgPlanner;
use mdg_net::{DeploymentConfig, Network};
use mdg_sim::{
    scenario_from_plan, simulate_lifetime, MobileGatheringSim, MultihopRoutingSim, SimConfig,
};

fn bench(c: &mut Criterion) {
    let net = Network::build(DeploymentConfig::uniform(100, 200.0).generate(42), 30.0);
    let plan = ShdgPlanner::new().plan(&net).unwrap();
    let cfg = SimConfig::default();

    let mut g = c.benchmark_group("f7_lifetime");
    g.bench_function("shdg_lifetime", |b| {
        b.iter(|| {
            let scen = scenario_from_plan(&plan, &net.deployment.sensors);
            let mut sim = MobileGatheringSim::new(scen, cfg);
            simulate_lifetime(&mut sim, 0.05, 5_000).rounds_run
        })
    });
    g.bench_function("multihop_lifetime", |b| {
        b.iter(|| {
            let mut sim = MultihopRoutingSim::new(&net, cfg);
            simulate_lifetime(&mut sim, 0.05, 5_000).rounds_run
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
