//! Bench for ablation A1: covering strategies.
//! (`experiments a1` regenerates the ablation table.)

use criterion::{criterion_group, criterion_main, Criterion};
use mdg_core::{tour_aware_cover, TourAwareConfig};
use mdg_cover::{greedy_cover, CoverageInstance};
use mdg_net::DeploymentConfig;

fn bench(c: &mut Criterion) {
    let dep = DeploymentConfig::uniform(300, 200.0).generate(42);
    let inst = CoverageInstance::sensor_sites(&dep.sensors, 30.0);

    let mut g = c.benchmark_group("a1_covering");
    g.bench_function("greedy_cover", |b| {
        b.iter(|| greedy_cover(&inst, |_| 0.0).unwrap().len())
    });
    g.bench_function("tour_aware_cover", |b| {
        b.iter(|| {
            tour_aware_cover(&inst, dep.sink, &TourAwareConfig::default())
                .unwrap()
                .selected
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
