//! Bench for experiments F5/F6: one simulated round of each scheme.
//! (`experiments f5` / `f6` regenerate the energy tables.)

use criterion::{criterion_group, criterion_main, Criterion};
use mdg_core::ShdgPlanner;
use mdg_net::{DeploymentConfig, Network};
use mdg_sim::{scenario_from_plan, MobileGatheringSim, MultihopRoutingSim, SimConfig};

fn bench(c: &mut Criterion) {
    let net = Network::build(DeploymentConfig::uniform(200, 200.0).generate(42), 30.0);
    let plan = ShdgPlanner::new().plan(&net).unwrap();
    let scen = scenario_from_plan(&plan, &net.deployment.sensors);
    let cfg = SimConfig::default();
    let mobile = MobileGatheringSim::new(scen, cfg);
    let routing = MultihopRoutingSim::new(&net, cfg);

    let mut g = c.benchmark_group("f5_energy_per_round");
    g.bench_function("shdg_round", |b| b.iter(|| mobile.run().total_joules()));
    g.bench_function("multihop_round", |b| {
        b.iter(|| routing.run().total_joules())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
