//! S1 — planner scaling sweep.
//!
//! Times the full SHDG planning pipeline (UDG + coverage instance build,
//! tour-aware cover, prune, tour construction and polish, assignment) on
//! uniform fields of growing size at **constant density**: the field side
//! grows as `sqrt(n) * 10`, so mean degree stays fixed while `n` sweeps
//! from 1 000 to 100 000 sensors. One topology per point (`base_seed`) —
//! the quantity of interest is wall-clock scaling, not topology variance.
//!
//! Setting the `MDG_SCALE_JSON` environment variable to a path makes the
//! experiment also write the table there as JSON (used to refresh the
//! committed `BENCH_scale.json`); unit tests and ordinary runs leave no
//! stray files behind.

use crate::params::{Params, Profile};
use crate::table::Table;
use mdg_core::{PlanMetrics, ShdgPlanner};
use mdg_net::{DeploymentConfig, Network};
use std::time::Instant;

/// Transmission range for every sweep point (the paper's `R = 30 m`).
const RANGE: f64 = 30.0;

/// Sensor counts per profile. Smoke is sized for a CI release-mode run in
/// a few seconds; Default/Full climb to the 100 000-sensor point.
fn n_sweep(p: &Params) -> Vec<usize> {
    match p.profile {
        Profile::Smoke => vec![500, 2_000],
        _ => vec![1_000, 5_000, 20_000, 100_000],
    }
}

/// S1: planning wall-clock vs field size at constant density.
pub fn scale(p: &Params) -> Table {
    let mut t = Table::new(
        "scale_sweep",
        "Planner scaling at constant density (side = sqrt(n)·10 m, R = 30 m, 1 topology)",
        &[
            "n_sensors",
            "side_m",
            "build_ms",
            "plan_ms",
            "polling_points",
            "tour_m",
            "mean_upload_m",
        ],
    );
    for &n in &n_sweep(p) {
        let side = (n as f64).sqrt() * 10.0;
        let t_build = Instant::now();
        let net = Network::build(
            DeploymentConfig::uniform(n, side).generate(p.base_seed),
            RANGE,
        );
        let build_ms = t_build.elapsed().as_secs_f64() * 1e3;
        let t_plan = Instant::now();
        let plan = ShdgPlanner::new()
            .plan(&net)
            .expect("uniform field is feasible");
        let plan_ms = t_plan.elapsed().as_secs_f64() * 1e3;
        let m = PlanMetrics::of(&plan, &net.deployment.sensors);
        t.push_row(vec![
            n as f64,
            side,
            build_ms,
            plan_ms,
            m.n_polling_points as f64,
            m.tour_length,
            m.mean_upload_dist,
        ]);
        println!(
            "  scale: n = {n:>6}  build {build_ms:>9.1} ms  plan {plan_ms:>9.1} ms  \
             {} polling points, tour {:.1} m",
            m.n_polling_points, m.tour_length
        );
    }
    t.notes = "Single topology per point (seed = base_seed); build_ms covers deployment + UDG \
               construction, plan_ms the full plan (cover, prune, tour, assignment). Constant \
               density: ~n/100 sensors per 10 m × 10 m cell at every n."
        .into();
    if let Ok(path) = std::env::var("MDG_SCALE_JSON") {
        if !path.is_empty() {
            match serde_json::to_string_pretty(&t) {
                Ok(json) => {
                    if let Err(e) = std::fs::write(&path, json + "\n") {
                        eprintln!("could not write {path}: {e}");
                    }
                }
                Err(e) => eprintln!("could not serialize scale table: {e}"),
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_produces_all_points() {
        let t = scale(&Params::smoke());
        assert_eq!(t.rows.len(), 2);
        let n = t.col("n_sensors").unwrap();
        let pps = t.col("polling_points").unwrap();
        let tour = t.col("tour_m").unwrap();
        for row in &t.rows {
            assert!(row[pps] >= 1.0, "n = {} produced no polling points", row[n]);
            assert!(row[tour].is_finite() && row[tour] > 0.0);
        }
        // Constant density: the larger field needs more polling points.
        assert!(t.rows[1][pps] > t.rows[0][pps]);
    }
}
