//! S3 — observability overhead and per-phase profile.
//!
//! Plans one constant-density uniform field twice — profiling off, then
//! profiling on — and reports the wall-clock overhead of the `mdg-obs`
//! instrumentation along with a bit-identity check on the two plans (the
//! observability determinism contract: profiling must only *observe*).
//! Each arm takes the minimum over a few repetitions so the overhead
//! column measures instrumentation cost, not scheduler noise.
//!
//! Setting the `MDG_PROFILE_JSON` environment variable to a path makes the
//! experiment also write the profiled run's span/counter/histogram records
//! there as JSONL (the same format as `mdg plan --profile-json`); this is
//! what CI uploads and what `EXPERIMENTS.md` §S3's per-phase table is
//! derived from. The per-phase tree is printed to stderr either way.

use crate::params::{Params, Profile};
use crate::table::Table;
use mdg_core::{GatheringPlan, ShdgPlanner};
use mdg_net::{DeploymentConfig, Network};
use std::time::Instant;

/// Transmission range for the profiled field (the paper's `R = 30 m`).
const RANGE: f64 = 30.0;

/// Repetitions per arm; each arm reports its minimum.
const REPS: usize = 3;

/// Field size per profile: the smoke field matches the CI overhead gate,
/// the default matches the §S3 table in `EXPERIMENTS.md`.
fn field_size(p: &Params) -> usize {
    match p.profile {
        Profile::Smoke => 2_000,
        _ => 20_000,
    }
}

fn timed_plan(net: &Network) -> (GatheringPlan, f64) {
    let t = Instant::now();
    let plan = ShdgPlanner::new()
        .plan(net)
        .expect("uniform field is feasible");
    (plan, t.elapsed().as_secs_f64() * 1e3)
}

/// S3: instrumentation overhead (profiling off vs on) on one plan.
pub fn profile(p: &Params) -> Table {
    let n = field_size(p);
    let side = (n as f64).sqrt() * 10.0;
    let net = Network::build(
        DeploymentConfig::uniform(n, side).generate(p.base_seed),
        RANGE,
    );

    mdg_obs::set_enabled(false);
    let mut off_ms = f64::INFINITY;
    let mut plan_off: Option<GatheringPlan> = None;
    for _ in 0..REPS {
        let (plan, ms) = timed_plan(&net);
        off_ms = off_ms.min(ms);
        plan_off = Some(plan);
    }

    let mut on_ms = f64::INFINITY;
    let mut plan_on: Option<GatheringPlan> = None;
    let mut prof = mdg_obs::snapshot();
    for _ in 0..REPS {
        mdg_obs::reset();
        mdg_obs::set_enabled(true);
        let (plan, ms) = timed_plan(&net);
        mdg_obs::set_enabled(false);
        prof = mdg_obs::snapshot();
        on_ms = on_ms.min(ms);
        plan_on = Some(plan);
    }
    mdg_obs::reset();

    let identical = plan_off == plan_on;
    assert!(identical, "profiling changed the plan at n = {n}");
    let overhead_pct = (on_ms - off_ms) / off_ms * 100.0;

    eprintln!("{}", prof.render_tree());
    println!(
        "  profile: n = {n:>6}  off {off_ms:>9.1} ms  on {on_ms:>9.1} ms  \
         overhead {overhead_pct:>+6.2} %  plans identical: {identical}"
    );

    if let Ok(path) = std::env::var("MDG_PROFILE_JSON") {
        if !path.is_empty() {
            if let Err(e) = std::fs::write(&path, prof.to_jsonl()) {
                eprintln!("could not write {path}: {e}");
            }
        }
    }

    let mut t = Table::new(
        "profile_overhead",
        "mdg-obs instrumentation overhead on one constant-density plan \
         (min over 3 reps per arm)",
        &[
            "n_sensors",
            "plan_off_ms",
            "plan_on_ms",
            "overhead_pct",
            "plans_identical",
        ],
    );
    t.push_row(vec![
        n as f64,
        off_ms,
        on_ms,
        overhead_pct,
        if identical { 1.0 } else { 0.0 },
    ]);
    t.notes = "Single topology (seed = base_seed), side = sqrt(n)·10 m, R = 30 m. Arms are \
               min-of-3 full SHDG plans with mdg-obs profiling disabled vs enabled; \
               plans_identical = 1 asserts the bit-identity contract. MDG_PROFILE_JSON=path \
               additionally dumps the profiled run's records as JSONL."
        .into();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_profile_reports_identical_plans() {
        let t = profile(&Params::smoke());
        assert_eq!(t.rows.len(), 1);
        let ident = t.col("plans_identical").unwrap();
        assert_eq!(t.rows[0][ident], 1.0);
        let off = t.col("plan_off_ms").unwrap();
        let on = t.col("plan_on_ms").unwrap();
        assert!(t.rows[0][off] > 0.0 && t.rows[0][on] > 0.0);
    }
}
