//! Result tables: the harness's output format.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::Path;

/// A numeric result table for one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Experiment id, e.g. `"F1"`.
    pub id: String,
    /// Human title, e.g. `"Tour length vs number of sensors"`.
    pub title: String,
    /// Column headers; the first column is the swept parameter.
    pub columns: Vec<String>,
    /// Data rows (numeric; one per parameter value).
    pub rows: Vec<Vec<f64>>,
    /// Free-text notes printed under the table (assumptions, units).
    pub notes: String,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: String::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format_cell(*v)).collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out, "\n*{}*", self.notes);
        }
        out
    }

    /// Renders as CSV (headers + rows, full precision).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Writes the CSV next to other results as `<dir>/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id.to_lowercase()));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// Column index by header name.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Extracts a column as a vector.
    pub fn column_values(&self, name: &str) -> Option<Vec<f64>> {
        let i = self.col(name)?;
        Some(self.rows.iter().map(|r| r[i]).collect())
    }
}

/// Compact numeric formatting: integers render without decimals, small
/// values keep precision.
fn format_cell(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if (v.round() - v).abs() < 1e-9 && v.abs() < 1e12 {
        format!("{}", v.round() as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("F9", "Fleet sizing", &["deadline", "collectors"]);
        t.push_row(vec![100.0, 4.0]);
        t.push_row(vec![200.0, 2.0]);
        t.notes = "speed 1 m/s".into();
        t
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.contains("### F9 — Fleet sizing"));
        assert!(md.contains("| deadline | collectors |"));
        assert!(md.contains("| 100 | 4 |"));
        assert!(md.contains("*speed 1 m/s*"));
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().next().unwrap(), "deadline,collectors");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn csv_file_roundtrip() {
        let dir = std::env::temp_dir().join("mdg_table_test");
        let path = sample().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("deadline,collectors"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn column_access() {
        let t = sample();
        assert_eq!(t.col("collectors"), Some(1));
        assert_eq!(t.col("missing"), None);
        assert_eq!(t.column_values("collectors"), Some(vec![4.0, 2.0]));
    }

    #[test]
    fn cell_formats() {
        assert_eq!(format_cell(0.0), "0");
        assert_eq!(format_cell(42.0), "42");
        assert_eq!(format_cell(1234.56), "1234.6");
        assert_eq!(format_cell(0.5), "0.500");
        assert_eq!(format_cell(0.0001234), "1.234e-4");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_row_panics() {
        sample().push_row(vec![1.0]);
    }
}
