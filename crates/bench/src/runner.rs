//! Parallel replicate execution on the [`mdg_par`] worker pool.

use crate::params::Params;

/// Runs `f(seed)` for every replicate seed across the [`mdg_par`] pool and
/// returns the results in seed order (deterministic regardless of
/// scheduling). Thread-count policy — `MDG_THREADS`, the programmatic
/// override, core autodetection — lives entirely in `mdg_par`; planner
/// parallelism nested inside a replicate falls back to sequential
/// automatically, so replicates and planner stages never oversubscribe.
pub fn replicate<R, F>(params: &Params, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    mdg_par::par_map(params.replicates, |i| f(params.seed(i)))
}

/// Runs `f(seed)` over all replicates and averages each component of the
/// returned vector (all replicates must return equal-length vectors).
pub fn replicate_mean<F>(params: &Params, f: F) -> Vec<f64>
where
    F: Fn(u64) -> Vec<f64> + Sync,
{
    let results = replicate(params, f);
    mean_rows(&results)
}

/// Component-wise mean of equally sized rows.
///
/// # Panics
/// Panics on an empty input or ragged rows.
pub fn mean_rows(rows: &[Vec<f64>]) -> Vec<f64> {
    assert!(!rows.is_empty(), "cannot average zero replicates");
    let width = rows[0].len();
    let mut acc = vec![0.0; width];
    for row in rows {
        assert_eq!(row.len(), width, "ragged replicate rows");
        for (a, &x) in acc.iter_mut().zip(row) {
            *a += x;
        }
    }
    for a in &mut acc {
        *a /= rows.len() as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicate_is_ordered_and_deterministic() {
        let p = Params {
            replicates: 8,
            base_seed: 100,
            ..Params::default()
        };
        let out = replicate(&p, |seed| seed * 2);
        assert_eq!(out, vec![200, 202, 204, 206, 208, 210, 212, 214]);
    }

    #[test]
    fn replicate_mean_averages() {
        let p = Params {
            replicates: 4,
            base_seed: 0,
            ..Params::default()
        };
        let out = replicate_mean(&p, |seed| vec![seed as f64, 10.0]);
        assert_eq!(out, vec![1.5, 10.0]);
    }

    #[test]
    fn single_replicate_uses_fallback_path() {
        let p = Params {
            replicates: 1,
            base_seed: 7,
            ..Params::default()
        };
        assert_eq!(replicate(&p, |seed| seed), vec![7]);
    }

    #[test]
    fn mean_rows_componentwise() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 6.0]];
        assert_eq!(mean_rows(&rows), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        mean_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "zero replicates")]
    fn empty_rows_panic() {
        mean_rows(&[]);
    }
}
