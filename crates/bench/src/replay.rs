//! S7 — counterfactual replay: self-check gate and retry-budget sweep.
//!
//! Records one lossy repairing run into an in-memory trace bundle, then
//! exercises the replay engine's two contracts as hard gates:
//!
//! 1. **Self-check** (`INV-CF-DETERMINISTIC`): replaying the recorded
//!    policy must reproduce the trace byte-for-byte — zero divergent
//!    rounds, asserted.
//! 2. **Thread independence**: the retry-budget sweep's divergence JSONL
//!    must be byte-identical at 1 and 2 worker threads, asserted.
//!
//! The table is the sweep itself: one row per retry budget, showing how
//! delivery, drops, retries and orphan time respond to the knob on the
//! *same* recorded world (same deaths, same loss law, same seed). The
//! recorded run's own budget shows up as the row with zero divergent
//! rounds.
//!
//! Setting `MDG_REPLAY_JSON` to a path also writes the table there as
//! JSON (used to refresh the committed `BENCH_replay.json`).

use crate::params::{Params, Profile};
use crate::table::Table;
use mdg_core::ShdgPlanner;
use mdg_runtime::replay::sweep_to_jsonl;
use mdg_runtime::{
    parse_bundle, FaultConfig, GatheringRuntime, ReplayEngine, ReplayManifest, RuntimeConfig,
    SweepSpec, TopologyManifest, TraceHeader, TraceWriter,
};

/// Transmission range for every point (the paper's `R = 30 m`).
const RANGE: f64 = 30.0;

/// Recorded-run size per profile.
fn dims(p: &Params) -> (usize, u64) {
    match p.profile {
        Profile::Smoke => (150, 6),
        Profile::Default => (600, 15),
        Profile::Full => (2_000, 30),
    }
}

/// S7: replay self-check gate plus a retry-budget sweep over one
/// recorded lossy run.
pub fn replay(p: &Params) -> Table {
    let (n, rounds) = dims(p);
    let side = (n as f64).sqrt() * 10.0;
    let manifest = ReplayManifest {
        topology: TopologyManifest::Uniform {
            n,
            side,
            seed: p.base_seed,
        },
        range: RANGE,
        config: RuntimeConfig {
            sim: p.sim,
            faults: FaultConfig {
                seed: p.base_seed,
                death_rate: 0.15,
                death_horizon_secs: 4_000.0,
                loss_rate: 0.25,
                max_retries: 2,
                backoff_secs: 0.2,
                ..FaultConfig::default()
            },
            max_rounds: rounds,
            ..RuntimeConfig::default()
        },
    };

    // Record the original run into an in-memory bundle, exactly as
    // `mdg runtime --trace` would on disk.
    let net = manifest.network();
    let plan = ShdgPlanner::new()
        .plan(&net)
        .expect("replay bench: planning failed");
    let mut tw = TraceWriter::with_header(Vec::new(), &TraceHeader::new(manifest.clone()))
        .expect("replay bench: header write");
    GatheringRuntime::new(net, plan, manifest.config)
        .run_traced(&mut tw)
        .expect("replay bench: recording failed");
    let text = String::from_utf8(tw.into_inner().expect("replay bench: flush")).expect("utf8");

    let engine = ReplayEngine::from_bundle(&parse_bundle(&text).expect("replay bench: parse"))
        .expect("replay bench: engine build");

    // Gate 1: the original policy reproduces the recording byte-for-byte.
    let check = engine.self_check();
    assert!(
        check.ok(),
        "replay self-check FAILED: {} of {} rounds diverge (first diff {:?})",
        check.divergent_rounds.len(),
        check.rounds_recorded,
        check.first_diff
    );

    // The sweep: retry budgets 0..=4 on the recorded world.
    let spec = SweepSpec::parse("retry_budget=0..4").expect("replay bench: spec");
    let run_sweep = || engine.sweep(&spec).expect("replay bench: sweep");

    // Gate 2: divergence JSONL is byte-identical at 1 vs 2 worker threads.
    mdg_par::set_threads(1);
    let points = run_sweep();
    let jsonl_1 = sweep_to_jsonl(&points);
    mdg_par::set_threads(2);
    let jsonl_2 = sweep_to_jsonl(&run_sweep());
    mdg_par::set_threads(0);
    assert_eq!(
        jsonl_1, jsonl_2,
        "replay sweep JSONL diverged between 1 and 2 worker threads"
    );

    let mut t = Table::new(
        "replay_retry_sweep",
        "Counterfactual retry-budget sweep over one recorded lossy run (R = 30 m)",
        &[
            "retry_budget",
            "delivered",
            "expected",
            "delivery_pct",
            "drops",
            "retries",
            "divergent_rounds",
            "orphan_secs",
        ],
    );
    for pt in &points {
        let c = &pt.result.counterfactual;
        t.push_row(vec![
            pt.value,
            c.delivered as f64,
            c.expected as f64,
            c.delivery_ratio() * 100.0,
            c.drops as f64,
            c.retries as f64,
            pt.result.divergences.len() as f64,
            c.orphan_secs,
        ]);
        println!(
            "  replay: retry_budget = {:<2} delivered {:>6}/{:<6} ({:>5.1}%)  drops {:>5}  \
             retries {:>6}  divergent rounds {:>2}",
            pt.value,
            c.delivered,
            c.expected,
            c.delivery_ratio() * 100.0,
            c.drops,
            c.retries,
            pt.result.divergences.len()
        );
    }

    // The recorded budget's row must be the exact no-op counterfactual.
    let recorded_budget = manifest.config.faults.max_retries as f64;
    let div_col = t.col("divergent_rounds").expect("column exists");
    let noop_row = t
        .rows
        .iter()
        .find(|r| r[0] == recorded_budget)
        .expect("sweep covers the recorded budget");
    assert_eq!(
        noop_row[div_col], 0.0,
        "replaying the recorded retry budget must not diverge"
    );
    // Delivery is monotone in the budget on a fixed world.
    let deliv: Vec<f64> = t.rows.iter().map(|r| r[1]).collect();
    assert!(
        deliv.windows(2).all(|w| w[0] <= w[1]),
        "delivery must be monotone in retry budget: {deliv:?}"
    );

    t.notes = format!(
        "One recorded run: n = {n}, {rounds} rounds, 15% deaths, 25% loss, recorded \
         retry budget 2, Repair policy, seed {}. Gates: self-check reproduces the \
         recording byte-for-byte (0 divergent rounds); the sweep's divergence JSONL is \
         byte-identical at 1 and 2 worker threads; the recorded budget's counterfactual \
         is a no-op; delivery is monotone in the budget. Divergent-round counts compare \
         each counterfactual against the recording.",
        p.base_seed
    );
    if let Ok(path) = std::env::var("MDG_REPLAY_JSON") {
        if !path.is_empty() {
            match serde_json::to_string_pretty(&t) {
                Ok(json) => {
                    if let Err(e) = std::fs::write(&path, json + "\n") {
                        eprintln!("could not write {path}: {e}");
                    }
                }
                Err(e) => eprintln!("could not serialize replay table: {e}"),
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_replay_gates_hold() {
        let t = replay(&Params::smoke());
        assert_eq!(t.rows.len(), 5, "budgets 0..=4");
        let div = t.col("divergent_rounds").unwrap();
        // Exactly the recorded budget (2) replays divergence-free; the
        // zero-budget counterfactual must diverge on a 25% loss run.
        assert_eq!(t.rows[2][div], 0.0);
        assert!(t.rows[0][div] > 0.0);
    }
}
