//! One function per reconstructed table/figure of the evaluation.
//!
//! Every figure replays identical seeded topologies through all compared
//! schemes and averages over `params.replicates` topologies per data point
//! (the paper averages over 500). Sweep ranges follow the paper's
//! settings: `L = 200 m` fields with `N = 100..500` and `R = 30 m` unless
//! the figure sweeps that parameter; CME tracks are 100 m apart.

use crate::params::{Params, Profile};
use crate::runner::{mean_rows, replicate};
use crate::schemes::{
    cme_tracks_for_field, eval_cme, eval_direct, eval_multihop, eval_shdg, eval_visit_all,
};
use crate::table::Table;
use mdg_baselines::{random_waypoint_walk, visit_all_plan};
use mdg_core::{exact_plan, fleet, CoveringStrategy, PlanMetrics, PlannerConfig, ShdgPlanner};
use mdg_geom::hull_perimeter;
use mdg_net::{DeploymentConfig, Network, SinkPlacement, Topology};
use mdg_sim::{scenario_from_plan, simulate_lifetime, MobileGatheringSim, MultihopRoutingSim};
use mdg_tour::{
    cheapest_insertion, christofides_like, held_karp_lower_bound, improve, mst_2approx,
    nearest_neighbor, three_opt, two_opt, ImproveConfig, MatrixCost,
};

fn uniform_net(n: usize, side: f64, range: f64, seed: u64) -> Network {
    Network::build(DeploymentConfig::uniform(n, side).generate(seed), range)
}

fn n_sweep(p: &Params) -> Vec<usize> {
    match p.profile {
        Profile::Smoke => vec![40, 80],
        _ => vec![100, 200, 300, 400, 500],
    }
}

// ---------------------------------------------------------------------
// E1 — the worked example (paper §"comparison with the optimal solution")
// ---------------------------------------------------------------------

/// E1: one small network solved by the heuristic, the exact solver and
/// visit-all; prints the chosen polling points and tours. Row encoding:
/// `scheme` column is 0 = heuristic, 1 = exact, 2 = visit-all.
pub fn e1(p: &Params) -> Table {
    let net = uniform_net(16, 70.0, 25.0, p.base_seed);
    let heur = ShdgPlanner::new().plan(&net).unwrap();
    let exact = exact_plan(&net).unwrap();
    let va = visit_all_plan(&net);

    println!("E1 example network: 16 sensors on 70 m × 70 m, R = 25 m, sink at center");
    for (i, s) in net.deployment.sensors.iter().enumerate() {
        println!("  sensor {i:2}: {s}");
    }
    for (name, plan) in [("heuristic", &heur), ("exact", &exact), ("visit-all", &va)] {
        let pps: Vec<usize> = plan.polling_points.iter().map(|pp| pp.candidate).collect();
        println!(
            "  {name:9}: tour {:7.2} m, polling points (tour order): {pps:?}",
            plan.tour_length
        );
    }

    let mut t = Table::new(
        "E1",
        "Worked example: heuristic vs exact vs visit-all (16 sensors, 70 m field, R = 25 m)",
        &[
            "scheme",
            "tour_m",
            "polling_points",
            "mean_upload_m",
            "max_sensors_per_pp",
        ],
    );
    for (i, plan) in [&heur, &exact, &va].iter().enumerate() {
        let m = PlanMetrics::of(plan, &net.deployment.sensors);
        t.push_row(vec![
            i as f64,
            m.tour_length,
            m.n_polling_points as f64,
            m.mean_upload_dist,
            m.max_sensors_per_pp as f64,
        ]);
    }
    t.notes = "scheme: 0 = SHDG heuristic, 1 = exact SHDGP (Held–Karp over minimal covers, \
               substituting the paper's CPLEX run), 2 = visit-every-sensor."
        .into();
    t
}

// ---------------------------------------------------------------------
// T1 — optimality gap on small instances
// ---------------------------------------------------------------------

/// T1: heuristic vs exact optimum across instance sizes.
pub fn t1(p: &Params) -> Table {
    let sizes: Vec<usize> = match p.profile {
        Profile::Smoke => vec![8, 10],
        _ => vec![10, 12, 14, 16],
    };
    let mut t = Table::new(
        "T1",
        "Optimality gap of the SHDG heuristic (70 m field, R = 25 m)",
        &[
            "n_sensors",
            "heur_tour_m",
            "opt_tour_m",
            "gap_pct",
            "heur_pps",
            "opt_pps",
        ],
    );
    for &n in &sizes {
        let rows: Vec<Vec<f64>> = replicate(p, |seed| {
            let net = uniform_net(n, 70.0, 25.0, seed);
            let heur = ShdgPlanner::new().plan(&net).unwrap();
            let Ok(exact) = exact_plan(&net) else {
                return Vec::new(); // budget exhausted: skip this replicate
            };
            let gap = if exact.tour_length > 1e-9 {
                (heur.tour_length / exact.tour_length - 1.0) * 100.0
            } else {
                0.0
            };
            vec![
                heur.tour_length,
                exact.tour_length,
                gap,
                heur.n_polling_points() as f64,
                exact.n_polling_points() as f64,
            ]
        })
        .into_iter()
        .filter(|r| !r.is_empty())
        .collect();
        let m = mean_rows(&rows);
        t.push_row(vec![n as f64, m[0], m[1], m[2], m[3], m[4]]);
    }
    t.notes = format!(
        "mean over {} random topologies per size; exact = minimal-cover enumeration + Held–Karp",
        p.replicates
    );
    t
}

// ---------------------------------------------------------------------
// F1–F3 — tour length sweeps
// ---------------------------------------------------------------------

/// F1: tour length vs number of sensors (L = 200 m, R = 30 m).
pub fn f1(p: &Params) -> Table {
    let side = 200.0;
    let tracks = cme_tracks_for_field(side);
    let mut t = Table::new(
        "F1",
        "Tour length vs number of sensors (200 m field, R = 30 m)",
        &["n", "shdg_m", "visit_all_m", "cme_m", "hull_lb_m"],
    );
    for &n in &n_sweep(p) {
        let m = crate::runner::replicate_mean(p, |seed| {
            let net = uniform_net(n, side, 30.0, seed);
            let shdg = eval_shdg(&net, &p.sim);
            let va = eval_visit_all(&net, &p.sim);
            let cme = eval_cme(&net, tracks, &p.sim);
            let mut pts = net.deployment.sensors.clone();
            pts.push(net.deployment.sink);
            vec![
                shdg.tour_length,
                va.tour_length,
                cme.tour_length,
                hull_perimeter(&pts),
            ]
        });
        t.push_row(vec![n as f64, m[0], m[1], m[2], m[3]]);
    }
    t.notes = format!(
        "mean over {} topologies; CME uses {} fixed tracks (100 m apart), its length is \
         independent of n; hull_lb = convex-hull perimeter (lower bound on any tour)",
        p.replicates, tracks
    );
    t
}

/// F2: tour length and polling points vs transmission range (N = 200,
/// L = 200 m).
pub fn f2(p: &Params) -> Table {
    let ranges: Vec<f64> = match p.profile {
        Profile::Smoke => vec![25.0, 45.0],
        _ => vec![20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0],
    };
    let mut t = Table::new(
        "F2",
        "Tour length vs transmission range (200 sensors, 200 m field)",
        &[
            "r_m",
            "shdg_tour_m",
            "polling_points",
            "mean_upload_m",
            "visit_all_m",
        ],
    );
    for &r in &ranges {
        let m = crate::runner::replicate_mean(p, |seed| {
            let net = uniform_net(200, 200.0, r, seed);
            let plan = ShdgPlanner::new().plan(&net).unwrap();
            let pm = PlanMetrics::of(&plan, &net.deployment.sensors);
            let va = visit_all_plan(&net);
            vec![
                plan.tour_length,
                pm.n_polling_points as f64,
                pm.mean_upload_dist,
                va.tour_length,
            ]
        });
        t.push_row(vec![r, m[0], m[1], m[2], m[3]]);
    }
    t.notes = format!(
        "mean over {} topologies; visit-all is range-independent",
        p.replicates
    );
    t
}

/// F3: tour length vs field size (N = 400, R = 30 m).
pub fn f3(p: &Params) -> Table {
    let sides: Vec<f64> = match p.profile {
        Profile::Smoke => vec![100.0, 200.0],
        _ => vec![100.0, 200.0, 300.0, 400.0, 500.0],
    };
    let mut t = Table::new(
        "F3",
        "Tour length vs field size (400 sensors, R = 30 m)",
        &["l_m", "shdg_m", "visit_all_m", "cme_m", "mh_delivery"],
    );
    for &side in &sides {
        let m = crate::runner::replicate_mean(p, |seed| {
            let net = uniform_net(400, side, 30.0, seed);
            let shdg = eval_shdg(&net, &p.sim);
            let va = eval_visit_all(&net, &p.sim);
            // Paper setting for the L sweep: 5 tracks spanning the field.
            let cme = eval_cme(&net, 5, &p.sim);
            let mh = eval_multihop(&net, &p.sim);
            vec![
                shdg.tour_length,
                va.tour_length,
                cme.tour_length,
                mh.delivery,
            ]
        });
        t.push_row(vec![side, m[0], m[1], m[2], m[3]]);
    }
    t.notes = format!(
        "mean over {} topologies; CME fixed at 5 tracks; mh_delivery shows static routing \
         failing as the field outgrows connectivity",
        p.replicates
    );
    t
}

// ---------------------------------------------------------------------
// F4 — polling-point counts
// ---------------------------------------------------------------------

/// F4: number of polling points vs N for the covering strategies.
pub fn f4(p: &Params) -> Table {
    let mut t = Table::new(
        "F4",
        "Polling points vs number of sensors (200 m field, R = 30 m)",
        &[
            "n",
            "pps_tour_aware",
            "pps_greedy",
            "pps_greedy_unpruned",
            "sensors_per_pp",
        ],
    );
    for &n in &n_sweep(p) {
        let m = crate::runner::replicate_mean(p, |seed| {
            let net = uniform_net(n, 200.0, 30.0, seed);
            let aware = ShdgPlanner::new().plan(&net).unwrap();
            let greedy = ShdgPlanner::with_config(PlannerConfig {
                covering: CoveringStrategy::Greedy,
                ..PlannerConfig::default()
            })
            .plan(&net)
            .unwrap();
            let unpruned = ShdgPlanner::with_config(PlannerConfig {
                covering: CoveringStrategy::Greedy,
                prune: false,
                ..PlannerConfig::default()
            })
            .plan(&net)
            .unwrap();
            vec![
                aware.n_polling_points() as f64,
                greedy.n_polling_points() as f64,
                unpruned.n_polling_points() as f64,
                n as f64 / aware.n_polling_points().max(1) as f64,
            ]
        });
        t.push_row(vec![n as f64, m[0], m[1], m[2], m[3]]);
    }
    t.notes = format!("mean over {} topologies", p.replicates);
    t
}

// ---------------------------------------------------------------------
// F5–F6 — energy
// ---------------------------------------------------------------------

/// F5: transmissions and energy per round vs N.
pub fn f5(p: &Params) -> Table {
    let mut t = Table::new(
        "F5",
        "Transmissions and sensor energy per round vs number of sensors (200 m field, R = 30 m)",
        &[
            "n",
            "tx_shdg",
            "tx_multihop",
            "e_shdg_mj",
            "e_multihop_mj",
            "e_direct_mj",
        ],
    );
    for &n in &n_sweep(p) {
        let m = crate::runner::replicate_mean(p, |seed| {
            let net = uniform_net(n, 200.0, 30.0, seed);
            let shdg = eval_shdg(&net, &p.sim);
            let mh = eval_multihop(&net, &p.sim);
            let d = eval_direct(&net, &p.sim);
            vec![
                shdg.transmissions,
                mh.transmissions,
                shdg.energy_j * 1e3,
                mh.energy_j * 1e3,
                d.energy_j * 1e3,
            ]
        });
        t.push_row(vec![n as f64, m[0], m[1], m[2], m[3], m[4]]);
    }
    t.notes = format!(
        "mean over {} topologies; SHDG transmits exactly once per sensor (tx_shdg = n)",
        p.replicates
    );
    t
}

/// F6: uniformity of energy consumption vs N (Jain's fairness index).
pub fn f6(p: &Params) -> Table {
    let mut t = Table::new(
        "F6",
        "Energy-consumption uniformity vs number of sensors (Jain index; 1 = perfectly uniform)",
        &["n", "jain_shdg", "jain_multihop", "jain_direct"],
    );
    for &n in &n_sweep(p) {
        let m = crate::runner::replicate_mean(p, |seed| {
            let net = uniform_net(n, 200.0, 30.0, seed);
            vec![
                eval_shdg(&net, &p.sim).fairness,
                eval_multihop(&net, &p.sim).fairness,
                eval_direct(&net, &p.sim).fairness,
            ]
        });
        t.push_row(vec![n as f64, m[0], m[1], m[2]]);
    }
    t.notes = format!(
        "mean over {} topologies; SHDG approaches 1 (every sensor transmits once over a \
         bounded distance), routing funnels load toward the sink",
        p.replicates
    );
    t
}

// ---------------------------------------------------------------------
// F7 — lifetime
// ---------------------------------------------------------------------

/// F7: network lifetime (rounds to first death) vs N, SHDG vs multi-hop
/// routing.
pub fn f7(p: &Params) -> Table {
    // Lifetime comparison needs a *connected* topology: unreachable
    // sensors never transmit under multihop routing, which would make a
    // sparse smoke network spuriously outlive mobile collection. n = 100
    // on the 200 m field (the paper's default density) is connected w.h.p.
    let ns = match p.profile {
        Profile::Smoke => vec![100],
        _ => vec![100, 200, 300, 400, 500],
    };
    let mut t = Table::new(
        "F7",
        "Network lifetime vs number of sensors (rounds until first sensor death)",
        &[
            "n",
            "shdg_first_death",
            "mh_first_death",
            "shdg_10pct",
            "mh_10pct",
        ],
    );
    for &n in &ns {
        let m = crate::runner::replicate_mean(p, |seed| {
            let net = uniform_net(n, 200.0, 30.0, seed);
            let plan = ShdgPlanner::new().plan(&net).unwrap();
            let scen = scenario_from_plan(&plan, &net.deployment.sensors);
            let mut mobile = MobileGatheringSim::new(scen, p.sim);
            let lr_m = simulate_lifetime(&mut mobile, p.battery_j, p.max_rounds);
            let mut routing = MultihopRoutingSim::new(&net, p.sim);
            let lr_r = simulate_lifetime(&mut routing, p.battery_j, p.max_rounds);
            let cap = p.max_rounds as f64;
            vec![
                lr_m.first_death_round.map_or(cap, |r| r as f64),
                lr_r.first_death_round.map_or(cap, |r| r as f64),
                lr_m.ten_pct_death_round.map_or(cap, |r| r as f64),
                lr_r.ten_pct_death_round.map_or(cap, |r| r as f64),
            ]
        });
        t.push_row(vec![n as f64, m[0], m[1], m[2], m[3]]);
    }
    t.notes = format!(
        "mean over {} topologies; batteries {} J; values capped at {} rounds",
        p.replicates, p.battery_j, p.max_rounds
    );
    t
}

// ---------------------------------------------------------------------
// F8 — latency
// ---------------------------------------------------------------------

/// F8: per-round data-collection latency vs N for all schemes.
pub fn f8(p: &Params) -> Table {
    let mut t = Table::new(
        "F8",
        "Data-collection latency per round vs number of sensors (collector 1 m/s)",
        &["n", "t_shdg_s", "t_visit_all_s", "t_cme_s", "t_multihop_s"],
    );
    for &n in &n_sweep(p) {
        let m = crate::runner::replicate_mean(p, |seed| {
            let net = uniform_net(n, 200.0, 30.0, seed);
            vec![
                eval_shdg(&net, &p.sim).latency_s,
                eval_visit_all(&net, &p.sim).latency_s,
                eval_cme(&net, 3, &p.sim).latency_s,
                eval_multihop(&net, &p.sim).latency_s,
            ]
        });
        t.push_row(vec![n as f64, m[0], m[1], m[2], m[3]]);
    }
    t.notes = format!(
        "mean over {} topologies; the mobility/latency tradeoff: routing delivers in \
         milliseconds, mobile schemes in tens of minutes — SHDG cuts the mobile latency \
         versus visit-all",
        p.replicates
    );
    t
}

// ---------------------------------------------------------------------
// F9 — multi-collector fleets
// ---------------------------------------------------------------------

/// F9: minimum fleet size vs data-gathering deadline (N = 400, L = 400 m).
pub fn f9(p: &Params) -> Table {
    let (n, side) = match p.profile {
        Profile::Smoke => (80, 200.0),
        _ => (400, 400.0),
    };
    let fracs = [0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0];
    let mut t = Table::new(
        "F9",
        "Fleet size vs data-gathering deadline (400 sensors, 400 m field, R = 30 m)",
        &["deadline_frac", "deadline_s", "collectors", "makespan_s"],
    );
    let rows: Vec<Vec<f64>> = replicate(p, |seed| {
        let net = uniform_net(n, side, 30.0, seed);
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        let single = plan.collection_time(p.sim.speed_mps, p.sim.upload_secs);
        let mut out = Vec::new();
        for &frac in &fracs {
            let deadline = single * frac;
            match fleet::plan_fleet_for_deadline(
                &plan,
                deadline,
                p.sim.speed_mps,
                p.sim.upload_secs,
            ) {
                Some(f) => {
                    out.push(deadline);
                    out.push(f.n_collectors() as f64);
                    out.push(f.makespan(p.sim.speed_mps, p.sim.upload_secs));
                }
                None => {
                    out.push(deadline);
                    out.push(f64::NAN);
                    out.push(f64::NAN);
                }
            }
        }
        out
    });
    let m = mean_rows(&rows);
    for (i, &frac) in fracs.iter().enumerate() {
        t.push_row(vec![frac, m[3 * i], m[3 * i + 1], m[3 * i + 2]]);
    }
    t.notes = format!(
        "mean over {} topologies; deadline_frac is relative to the single-collector round time",
        p.replicates
    );
    t
}

// ---------------------------------------------------------------------
// F10 — disconnected networks
// ---------------------------------------------------------------------

/// F10: delivery on deliberately disconnected corridor topologies.
pub fn f10(p: &Params) -> Table {
    let ranges: Vec<f64> = match p.profile {
        Profile::Smoke => vec![20.0, 40.0],
        _ => vec![20.0, 30.0, 40.0, 50.0, 60.0],
    };
    let mut t = Table::new(
        "F10",
        "Delivery ratio on disconnected corridor fields (3 bands, 300 m field)",
        &[
            "r_m",
            "shdg_delivery",
            "mh_delivery",
            "cme_delivery",
            "components",
        ],
    );
    for &r in &ranges {
        let m = crate::runner::replicate_mean(p, |seed| {
            let cfg = DeploymentConfig {
                field_side: 300.0,
                sink: SinkPlacement::Center,
                topology: Topology::Corridors {
                    bands: 3,
                    per_band: 60,
                    band_height: 20.0,
                },
            };
            let net = Network::build(cfg.generate(seed), r);
            let shdg = eval_shdg(&net, &p.sim);
            let mh = eval_multihop(&net, &p.sim);
            let cme = eval_cme(&net, 3, &p.sim);
            let (components, _) = mdg_net::components(&net.sensor_graph);
            vec![shdg.delivery, mh.delivery, cme.delivery, components as f64]
        });
        t.push_row(vec![r, m[0], m[1], m[2], m[3]]);
    }
    t.notes = format!(
        "mean over {} topologies; the mobile collector serves every island regardless of \
         connectivity — static routing cannot cross the 80 m gaps",
        p.replicates
    );
    t
}

/// F11: buffer-bounded polling points — the paper's buffer-constraint
/// motivation made quantitative: tighter per-point buffers force more
/// polling points and a longer tour.
pub fn f11(p: &Params) -> Table {
    let n = match p.profile {
        Profile::Smoke => 60,
        _ => 300,
    };
    let caps: Vec<Option<usize>> = vec![Some(2), Some(5), Some(10), Some(20), Some(40), None];
    let mut t = Table::new(
        "F11",
        "Buffer-bounded polling points (300 sensors, 200 m field, R = 30 m)",
        &[
            "cap",
            "polling_points",
            "tour_m",
            "max_load",
            "mean_pause_s",
        ],
    );
    for &cap in &caps {
        let m = crate::runner::replicate_mean(p, |seed| {
            let net = uniform_net(n, 200.0, 30.0, seed);
            let cfg = PlannerConfig {
                max_sensors_per_pp: cap,
                ..PlannerConfig::default()
            };
            let plan = ShdgPlanner::with_config(cfg).plan(&net).unwrap();
            vec![
                plan.n_polling_points() as f64,
                plan.tour_length,
                plan.max_sensors_per_pp() as f64,
                p.sim.upload_secs * plan.max_sensors_per_pp() as f64,
            ]
        });
        t.push_row(vec![
            cap.map_or(f64::INFINITY, |c| c as f64),
            m[0],
            m[1],
            m[2],
            m[3],
        ]);
    }
    t.notes = format!(
        "mean over {} topologies; cap = maximum sensors a single polling point may buffer          (inf = unbounded); mean_pause_s is the worst single-stop pause at {} s/upload",
        p.replicates, p.sim.upload_secs
    );
    t
}

/// F12: uncontrolled mobility — a random-waypoint data MULE given
/// multiples of the SHDG tour budget, versus the planned tour's guaranteed
/// full coverage.
pub fn f12(p: &Params) -> Table {
    let n = match p.profile {
        Profile::Smoke => 60,
        _ => 200,
    };
    let budgets = [0.5, 1.0, 2.0, 4.0, 8.0];
    let mut t = Table::new(
        "F12",
        "Random-waypoint MULE coverage vs travel budget (multiples of the SHDG tour)",
        &[
            "budget_x",
            "mule_coverage",
            "mule_mean_contact_s",
            "shdg_tour_s",
        ],
    );
    let rows: Vec<Vec<f64>> = replicate(p, |seed| {
        let net = uniform_net(n, 200.0, 30.0, seed);
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        let mut out = Vec::new();
        for &bx in &budgets {
            let walk = random_waypoint_walk(
                &net,
                p.sim.speed_mps,
                bx * plan.tour_length / p.sim.speed_mps,
                seed ^ 0xA5A5,
            );
            out.push(walk.coverage());
            out.push(walk.mean_contact_latency());
        }
        out.push(plan.tour_length / p.sim.speed_mps);
        out
    });
    let m = mean_rows(&rows);
    for (i, &bx) in budgets.iter().enumerate() {
        t.push_row(vec![bx, m[2 * i], m[2 * i + 1], m[2 * budgets.len()]]);
    }
    t.notes = format!(
        "mean over {} topologies; the planned tour contacts 100% of sensors by construction —          the random mule needs multiples of that budget and still only covers probabilistically",
        p.replicates
    );
    t
}

// ---------------------------------------------------------------------
// A1–A3 — ablations
// ---------------------------------------------------------------------

/// A1: covering-strategy ablation (tour-aware vs plain greedy vs
/// unpruned).
pub fn a1(p: &Params) -> Table {
    let mut t = Table::new(
        "A1",
        "Ablation: covering strategy (tour length, 200 m field, R = 30 m)",
        &[
            "n",
            "tour_aware_m",
            "greedy_m",
            "greedy_unpruned_m",
            "no_improve_m",
        ],
    );
    for &n in &n_sweep(p) {
        let m = crate::runner::replicate_mean(p, |seed| {
            let net = uniform_net(n, 200.0, 30.0, seed);
            let aware = ShdgPlanner::new().plan(&net).unwrap().tour_length;
            let greedy = ShdgPlanner::with_config(PlannerConfig {
                covering: CoveringStrategy::Greedy,
                ..PlannerConfig::default()
            })
            .plan(&net)
            .unwrap()
            .tour_length;
            let unpruned = ShdgPlanner::with_config(PlannerConfig {
                covering: CoveringStrategy::Greedy,
                prune: false,
                ..PlannerConfig::default()
            })
            .plan(&net)
            .unwrap()
            .tour_length;
            let no_improve = ShdgPlanner::with_config(PlannerConfig {
                improve_passes: 0,
                ..PlannerConfig::default()
            })
            .plan(&net)
            .unwrap()
            .tour_length;
            vec![aware, greedy, unpruned, no_improve]
        });
        t.push_row(vec![n as f64, m[0], m[1], m[2], m[3]]);
    }
    t.notes = format!("mean over {} topologies", p.replicates);
    t
}

/// A2: TSP-construction ablation on the planner's own polling-point sets.
pub fn a2(p: &Params) -> Table {
    let ns = match p.profile {
        Profile::Smoke => vec![60],
        _ => vec![100, 300, 500],
    };
    let mut t = Table::new(
        "A2",
        "Ablation: tour construction over the selected polling points + sink",
        &[
            "n",
            "nn_m",
            "nn_2opt_m",
            "nn_3opt_m",
            "ci_full_m",
            "mst_2approx_m",
            "christofides_m",
            "hk_lower_bound_m",
        ],
    );
    for &n in &ns {
        let m = crate::runner::replicate_mean(p, |seed| {
            let net = uniform_net(n, 200.0, 30.0, seed);
            let plan = ShdgPlanner::new().plan(&net).unwrap();
            let pts = plan.tour_positions();
            let cost = MatrixCost::from_points(&pts);
            let nn = nearest_neighbor(&cost);
            let nn_len = nn.length(&cost);
            let nn2 = two_opt(&cost, nn.clone()).length(&cost);
            let nn3 = three_opt(&cost, nn).length(&cost);
            let ci =
                improve(&cost, cheapest_insertion(&cost), &ImproveConfig::default()).length(&cost);
            let mst = mst_2approx(&cost).length(&cost);
            let ch = christofides_like(&cost).length(&cost);
            let lb = held_karp_lower_bound(&cost, 50);
            vec![nn_len, nn2, nn3, ci, mst, ch, lb]
        });
        t.push_row(vec![n as f64, m[0], m[1], m[2], m[3], m[4], m[5], m[6]]);
    }
    t.notes = format!(
        "mean over {} topologies; instances are each plan's sink + polling points",
        p.replicates
    );
    t
}

/// A3: fleet-partitioning ablation — tour splitting vs angular sectors.
pub fn a3(p: &Params) -> Table {
    let (n, side) = match p.profile {
        Profile::Smoke => (80, 200.0),
        _ => (400, 400.0),
    };
    let ks = [2usize, 3, 4, 6, 8];
    let mut t = Table::new(
        "A3",
        "Ablation: fleet partitioning — tour splitting vs angular sectors (max sub-tour, m)",
        &[
            "k",
            "split_max_m",
            "angular_max_m",
            "split_total_m",
            "angular_total_m",
        ],
    );
    let rows: Vec<Vec<f64>> = replicate(p, |seed| {
        let net = uniform_net(n, side, 30.0, seed);
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        let mut out = Vec::new();
        for &k in &ks {
            let split = fleet::plan_fleet(&plan, k);
            let angular = fleet::plan_fleet_angular(&plan, k);
            out.push(split.max_length());
            out.push(angular.max_length());
            out.push(split.total_length());
            out.push(angular.total_length());
        }
        out
    });
    let m = mean_rows(&rows);
    for (i, &k) in ks.iter().enumerate() {
        t.push_row(vec![
            k as f64,
            m[4 * i],
            m[4 * i + 1],
            m[4 * i + 2],
            m[4 * i + 3],
        ]);
    }
    t.notes = format!(
        "mean over {} topologies; 400 sensors on a 400 m field",
        p.replicates
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> Params {
        Params::smoke()
    }

    #[test]
    fn f1_shapes_hold() {
        let t = f1(&smoke());
        // SHDG ≤ visit-all at every point; hull lower-bounds SHDG.
        let shdg = t.column_values("shdg_m").unwrap();
        let va = t.column_values("visit_all_m").unwrap();
        let lb = t.column_values("hull_lb_m").unwrap();
        for i in 0..shdg.len() {
            assert!(shdg[i] <= va[i] + 1e-6, "row {i}");
            assert!(
                shdg[i] + 1e-6 >= lb[i],
                "row {i}: tour beats its lower bound?"
            );
        }
        // Visit-all grows with n.
        assert!(va.last().unwrap() > va.first().unwrap());
    }

    #[test]
    fn f2_tour_shrinks_with_range() {
        let t = f2(&smoke());
        let tour = t.column_values("shdg_tour_m").unwrap();
        assert!(
            tour.last().unwrap() < tour.first().unwrap(),
            "larger R ⇒ shorter tour"
        );
        let pps = t.column_values("polling_points").unwrap();
        assert!(
            pps.last().unwrap() < pps.first().unwrap(),
            "larger R ⇒ fewer polling points"
        );
    }

    #[test]
    fn f5_transmission_identity() {
        let t = f5(&smoke());
        let n = t.column_values("n").unwrap();
        let tx = t.column_values("tx_shdg").unwrap();
        for i in 0..n.len() {
            assert!(
                (tx[i] - n[i]).abs() < 1e-9,
                "SHDG sends exactly one tx per sensor"
            );
        }
        let mh = t.column_values("tx_multihop").unwrap();
        for i in 0..n.len() {
            assert!(mh[i] >= tx[i], "relaying cannot beat one tx per packet");
        }
    }

    #[test]
    fn f6_shdg_is_most_uniform() {
        let t = f6(&smoke());
        let shdg = t.column_values("jain_shdg").unwrap();
        let mh = t.column_values("jain_multihop").unwrap();
        for i in 0..shdg.len() {
            assert!(
                shdg[i] > mh[i],
                "row {i}: mobile single-hop must be more uniform"
            );
            // One tx per sensor over 0..R meters: high but not perfect
            // uniformity (distance term varies).
            assert!(
                shdg[i] > 0.8,
                "row {i}: SHDG fairness should be high, got {}",
                shdg[i]
            );
        }
    }

    #[test]
    fn f7_mobile_outlives_routing() {
        let t = f7(&smoke());
        let shdg = t.column_values("shdg_first_death").unwrap();
        let mh = t.column_values("mh_first_death").unwrap();
        for i in 0..shdg.len() {
            assert!(
                shdg[i] > mh[i],
                "row {i}: SHDG {} vs multihop {}",
                shdg[i],
                mh[i]
            );
        }
    }

    #[test]
    fn f9_collectors_decrease_with_deadline() {
        let t = f9(&smoke());
        let col = t.column_values("collectors").unwrap();
        for w in col.windows(2) {
            if w[0].is_nan() || w[1].is_nan() {
                continue;
            }
            assert!(
                w[1] <= w[0] + 1e-9,
                "looser deadline needs no more collectors"
            );
        }
    }

    #[test]
    fn f10_mobile_always_delivers() {
        let t = f10(&smoke());
        let shdg = t.column_values("shdg_delivery").unwrap();
        let mh = t.column_values("mh_delivery").unwrap();
        for i in 0..shdg.len() {
            assert!(
                (shdg[i] - 1.0).abs() < 1e-9,
                "row {i}: SHDG delivery must be 1"
            );
            assert!(
                mh[i] < 0.9,
                "row {i}: routing cannot bridge the corridor gaps"
            );
        }
    }

    #[test]
    fn t1_gap_is_small_and_nonnegative() {
        let t = t1(&smoke());
        let gap = t.column_values("gap_pct").unwrap();
        for (i, &g) in gap.iter().enumerate() {
            assert!(g >= -1e-6, "row {i}: heuristic cannot beat the optimum");
            assert!(g < 60.0, "row {i}: gap {g}% is implausibly large");
        }
    }

    #[test]
    fn a2_improvement_ordering() {
        let t = a2(&smoke());
        let nn = t.column_values("nn_m").unwrap();
        let nn2 = t.column_values("nn_2opt_m").unwrap();
        for i in 0..nn.len() {
            assert!(nn2[i] <= nn[i] + 1e-6, "2-opt must not lengthen NN");
        }
    }
}
