//! S4 — serving-layer churn benchmark.
//!
//! Measures what the `mdg-serve` daemon buys over stateless planning: an
//! in-process [`Server`] is driven over a real TCP socket through a cold
//! `plan` followed by a sustained stream of `delta` requests (a trickle of
//! deaths each round, a sensor added every few rounds), and each point
//! reports the cold-plan latency against the warm-delta latency
//! distribution (p50/p99), the speedup, and the sustained request rate.
//!
//! Latencies are the *server-side* `elapsed_ms` figures, so the numbers
//! isolate planning/repair cost from socket round-trips; `req_per_s` is
//! client-observed wall-clock over the whole churn stream and therefore
//! includes the protocol overhead.
//!
//! Setting `MDG_SERVE_JSON` to a path also writes the table there as JSON
//! (used to refresh the committed `BENCH_serve.json`).

use crate::params::{Params, Profile};
use crate::table::Table;
use mdg_geom::Point;
use mdg_serve::client::Client;
use mdg_serve::server::{ServeConfig, Server};
use std::time::Instant;

/// Transmission range for every sweep point (the paper's `R = 30 m`).
const RANGE: f64 = 30.0;

/// Field sizes swept per profile. The acceptance target — warm deltas an
/// order of magnitude under the cold plan — is asserted at the ≥10 000
/// sensor points by `tests/equivalence.rs` and demonstrated here.
fn sweep(p: &Params) -> &'static [usize] {
    match p.profile {
        Profile::Smoke => &[1_000],
        Profile::Default => &[2_000, 10_000],
        Profile::Full => &[2_000, 10_000, 50_000],
    }
}

/// Delta rounds per sweep point.
fn rounds(p: &Params) -> usize {
    match p.profile {
        Profile::Smoke => 10,
        _ => 40,
    }
}

/// Percentile of a latency sample (nearest-rank).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// S4: warm-delta latency vs cold-plan latency under sustained churn.
pub fn serve(p: &Params) -> Table {
    let mut t = Table::new(
        "serve_churn",
        "Serving layer under churn (cold plan vs warm delta, R = 30 m)",
        &[
            "n_sensors",
            "rounds",
            "cold_ms",
            "delta_p50_ms",
            "delta_p99_ms",
            "speedup_p50",
            "req_per_s",
            "full_replans",
        ],
    );
    let server = Server::start(ServeConfig::default()).expect("serve bench: bind failed");
    let mut client = Client::connect(server.local_addr()).expect("serve bench: connect failed");
    for &n in sweep(p) {
        let side = (n as f64).sqrt() * 10.0;
        let field = format!("s4-{n}");
        let cold = client
            .plan_uniform(&field, n as u64, side, p.base_seed, RANGE)
            .expect("serve bench: plan transport")
            .expect("serve bench: plan rejected");
        let r = rounds(p);
        // Churn: each round kills a deterministic 0.1% scatter of the id
        // space (re-kills are harmless), and every 4th round also adds a
        // sensor — exercising the rebuild path so p99 reflects it.
        let deaths_per_round = (n / 1000).max(2);
        let mut latencies = Vec::with_capacity(r);
        let mut full_replans = 0u64;
        let t_churn = Instant::now();
        for round in 0..r {
            let died: Vec<u64> = (0..deaths_per_round)
                .map(|i| ((round * 7919 + i * 104_729) % n) as u64)
                .collect();
            let added = if round % 4 == 3 {
                let f = (round + 1) as f64 / (r + 1) as f64;
                vec![Point::new(side * f, side * (1.0 - f))]
            } else {
                Vec::new()
            };
            let summary = client
                .delta(&field, died, added, None)
                .expect("serve bench: delta transport")
                .expect("serve bench: delta rejected");
            if summary.mode == "replan" {
                full_replans += 1;
            }
            latencies.push(summary.elapsed_ms);
        }
        let churn_secs = t_churn.elapsed().as_secs_f64();
        latencies.sort_by(|a, b| a.total_cmp(b));
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);
        let speedup = cold.elapsed_ms / p50.max(1e-9);
        let req_per_s = r as f64 / churn_secs.max(1e-9);
        t.push_row(vec![
            n as f64,
            r as f64,
            cold.elapsed_ms,
            p50,
            p99,
            speedup,
            req_per_s,
            full_replans as f64,
        ]);
        println!(
            "  serve: n = {n:>6}  cold {:>8.1} ms  delta p50 {p50:>7.2} ms  p99 {p99:>7.2} ms  \
             speedup {speedup:>6.1}x  {req_per_s:>6.1} req/s",
            cold.elapsed_ms
        );
    }
    client
        .shutdown()
        .expect("serve bench: shutdown transport")
        .expect("serve bench: shutdown rejected");
    server.join();
    t.notes = "One warm session per point; deltas kill max(2, n/1000) deterministic sensors per \
               round and add one sensor every 4th round (rebuild path included). Latencies are \
               server-side planning/repair wall time; req_per_s is client wall-clock over the \
               churn stream including protocol overhead. speedup_p50 = cold_ms / delta_p50_ms."
        .into();
    if let Ok(path) = std::env::var("MDG_SERVE_JSON") {
        if !path.is_empty() {
            match serde_json::to_string_pretty(&t) {
                Ok(json) => {
                    if let Err(e) = std::fs::write(&path, json + "\n") {
                        eprintln!("could not write {path}: {e}");
                    }
                }
                Err(e) => eprintln!("could not serialize serve table: {e}"),
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_churn_beats_cold_plan() {
        let t = serve(&Params::smoke());
        assert_eq!(t.rows.len(), 1);
        let speedup = t.col("speedup_p50").unwrap();
        let p50 = t.col("delta_p50_ms").unwrap();
        let p99 = t.col("delta_p99_ms").unwrap();
        for row in &t.rows {
            assert!(row[speedup] > 1.0, "warm deltas must beat the cold plan");
            assert!(row[p50] <= row[p99], "percentiles must be ordered");
        }
    }
}
