//! Fault-tolerance sweep: static SHDG vs online repair (`mdg-runtime`)
//! under node deaths and upload loss.
//!
//! For each (death rate × loss rate) grid point the same seeded
//! topologies, initial plans and fault schedules are replayed under both
//! [`RepairPolicy::Static`] (the paper's offline plan, driven unchanged)
//! and [`RepairPolicy::Repair`]. The headline metric is **orphaned-sensor
//! time**: live-sensor-seconds spent without single-hop coverage. A
//! static plan orphans a dead polling point's sensors forever; repair
//! re-covers them after its one-round detection lag.

use crate::params::{Params, Profile};
use crate::runner::{mean_rows, replicate};
use crate::table::Table;
use mdg_core::ShdgPlanner;
use mdg_net::{DeploymentConfig, Network};
use mdg_runtime::{FaultConfig, GatheringRuntime, RepairPolicy, RuntimeConfig};

/// The faults sweep (CSV lands as `faults_sweep.csv`).
pub fn faults(p: &Params) -> Table {
    let (n, rounds, death_rates, loss_rates): (usize, u64, Vec<f64>, Vec<f64>) = match p.profile {
        Profile::Smoke => (60, 6, vec![0.0, 0.2], vec![0.0, 0.2]),
        Profile::Default => (100, 30, vec![0.0, 0.05, 0.1, 0.2, 0.3], vec![0.0, 0.1, 0.2]),
        Profile::Full => (
            100,
            50,
            vec![0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4],
            vec![0.0, 0.05, 0.1, 0.2, 0.3],
        ),
    };

    let mut t = Table::new(
        "FAULTS_SWEEP",
        "Static SHDG vs online repair under node deaths and upload loss \
         (200 m field, R = 30 m)",
        &[
            "death_rate",
            "loss_rate",
            "static_orphan_s",
            "repair_orphan_s",
            "static_deliv_pct",
            "repair_deliv_pct",
            "repairs",
            "full_replans",
            "retries_per_round",
            "repair_tour_m",
        ],
    );

    for &death_rate in &death_rates {
        for &loss_rate in &loss_rates {
            let rows: Vec<Vec<f64>> = replicate(p, |seed| {
                let net = Network::build(DeploymentConfig::uniform(n, 200.0).generate(seed), 30.0);
                let plan = ShdgPlanner::new().plan(&net).unwrap();
                // Spread deaths over the first ~60% of the run so repair
                // has rounds left in which to show its recovery.
                let horizon =
                    plan.collection_time(p.sim.speed_mps, p.sim.upload_secs) * rounds as f64 * 0.6;
                let faults = FaultConfig {
                    seed,
                    death_rate,
                    death_horizon_secs: horizon,
                    loss_rate,
                    max_retries: 3,
                    backoff_secs: 0.2,
                    ..FaultConfig::default()
                };
                let run = |policy| {
                    let cfg = RuntimeConfig {
                        sim: p.sim,
                        faults,
                        policy,
                        max_rounds: rounds,
                        battery_j: None,
                        ..RuntimeConfig::default()
                    };
                    GatheringRuntime::new(net.clone(), plan.clone(), cfg).run()
                };
                let st = run(RepairPolicy::Static);
                let rp = run(RepairPolicy::Repair);
                vec![
                    death_rate,
                    loss_rate,
                    st.orphan_secs,
                    rp.orphan_secs,
                    st.delivery_ratio() * 100.0,
                    rp.delivery_ratio() * 100.0,
                    rp.repairs as f64,
                    rp.full_replans as f64,
                    rp.retries as f64 / rp.rounds.max(1) as f64,
                    rp.final_tour_length,
                ]
            });
            t.push_row(mean_rows(&rows));
        }
    }
    t.notes = "Same seeded topologies, plans and fault schedules replayed under both \
               policies. orphan_s = live-sensor-seconds without single-hop coverage; \
               static plans never recover a dead polling point's sensors, repair \
               re-covers them after a one-round detection lag."
        .into();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_strictly_beats_static_on_orphan_time_at_high_death_rates() {
        let t = faults(&Params::smoke());
        let death = t.column_values("death_rate").unwrap();
        let st = t.column_values("static_orphan_s").unwrap();
        let rp = t.column_values("repair_orphan_s").unwrap();
        let mut checked = 0;
        for i in 0..death.len() {
            if death[i] >= 0.1 {
                assert!(
                    rp[i] < st[i],
                    "row {i}: repair {} must orphan strictly less than static {}",
                    rp[i],
                    st[i]
                );
                checked += 1;
            } else {
                assert_eq!(st[i], 0.0, "row {i}: no deaths, no orphans");
                assert_eq!(rp[i], 0.0, "row {i}: no deaths, no orphans");
            }
        }
        assert!(checked > 0, "sweep must include death rates ≥ 10%");
    }

    #[test]
    fn faults_table_is_deterministic() {
        let a = faults(&Params::smoke());
        let b = faults(&Params::smoke());
        assert_eq!(a.rows, b.rows);
    }
}
