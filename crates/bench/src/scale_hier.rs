//! S5 — hierarchical planner scaling sweep.
//!
//! Extends the S1 constant-density sweep (side = `sqrt(n) * 10`,
//! `R = 30 m`, one topology per point) through the wall S1 stops at: the
//! flat planner's O(n²)-bit coverage instance caps it near 100 000
//! sensors, while the hierarchical planner (`HierPlanner`: tile → plan
//! per tile → stitch → seam touch-up) keeps memory per tile bounded and
//! climbs to **one million sensors**.
//!
//! Every point plans hierarchically; points small enough for the flat
//! planner (n ≤ 20 000) also plan flat and record the quality ratio
//! `hier_tour_m / flat_tour_m`, asserting the ≤ 1.25× gate and full
//! coverage. One mid-size point re-plans at 1/2/8 worker threads and
//! asserts bit-identical plans — the determinism contract must hold
//! through the tiled fan-out, not just the flat pipeline.
//!
//! Setting `MDG_SCALE_HIER_JSON` to a path also writes the table there as
//! JSON (used to refresh the committed `BENCH_scale_hier.json`).

use crate::params::{Params, Profile};
use crate::table::Table;
use mdg_core::{HierConfig, HierPlanner, PlanMetrics, ShdgPlanner};
use mdg_net::{DeploymentConfig, Network};
use std::time::Instant;

/// Transmission range for every sweep point (the paper's `R = 30 m`).
const RANGE: f64 = 30.0;

/// Largest n the flat planner also runs at, for the quality ratio. The
/// flat 100 000-sensor point costs ~2 minutes on its own (see S1), so the
/// side-by-side comparison stops at 20 000.
const FLAT_LIMIT: usize = 20_000;

/// Hier tours may be at most this factor longer than flat tours wherever
/// both run (the ISSUE's quality gate).
const QUALITY_GATE: f64 = 1.25;

/// Thread counts for the determinism check.
const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

/// Sensor counts per profile. Smoke is sized for a CI release-mode run in
/// seconds; Default/Full climb to the million-sensor point.
fn n_sweep(p: &Params) -> Vec<usize> {
    match p.profile {
        Profile::Smoke => vec![500, 2_000],
        _ => vec![1_000, 5_000, 20_000, 100_000, 1_000_000],
    }
}

/// The sweep point the thread-determinism check runs on.
fn determinism_n(p: &Params) -> usize {
    match p.profile {
        Profile::Smoke => 2_000,
        _ => 20_000,
    }
}

/// S5: hierarchical planner scaling at constant density, flat comparison
/// where feasible, thread-count determinism on one point.
pub fn scale_hier(p: &Params) -> Table {
    let mut t = Table::new(
        "scale_hier_sweep",
        "Hierarchical planner scaling at constant density (side = sqrt(n)·10 m, R = 30 m, \
         1 topology; flat comparison for n <= 20 000)",
        &[
            "n_sensors",
            "side_m",
            "build_ms",
            "hier_plan_ms",
            "hier_polling_points",
            "hier_tour_m",
            "tiles_occupied",
            "spliced_stops",
            "flat_plan_ms",
            "flat_tour_m",
            "tour_ratio",
        ],
    );
    let det_n = determinism_n(p);
    for &n in &n_sweep(p) {
        let side = (n as f64).sqrt() * 10.0;
        let t_build = Instant::now();
        let net = Network::build(
            DeploymentConfig::uniform(n, side).generate(p.base_seed),
            RANGE,
        );
        let build_ms = t_build.elapsed().as_secs_f64() * 1e3;

        let t_hier = Instant::now();
        let (hier_plan, stats) = HierPlanner::new()
            .plan_with_stats(&net)
            .expect("uniform field is feasible");
        let hier_ms = t_hier.elapsed().as_secs_f64() * 1e3;
        hier_plan
            .validate(&net.deployment.sensors, RANGE)
            .expect("hier plan must cover every sensor");
        let hm = PlanMetrics::of(&hier_plan, &net.deployment.sensors);

        // Flat comparison where the flat planner is still tractable.
        let (flat_ms, flat_tour, ratio) = if n <= FLAT_LIMIT {
            let t_flat = Instant::now();
            let flat = ShdgPlanner::new()
                .plan(&net)
                .expect("uniform field is feasible");
            let flat_ms = t_flat.elapsed().as_secs_f64() * 1e3;
            let fm = PlanMetrics::of(&flat, &net.deployment.sensors);
            let ratio = hm.tour_length / fm.tour_length;
            assert!(
                ratio <= QUALITY_GATE,
                "n = {n}: hier tour {:.1} m is {ratio:.3}x the flat tour {:.1} m \
                 (gate {QUALITY_GATE}x)",
                hm.tour_length,
                fm.tour_length
            );
            (flat_ms, fm.tour_length, ratio)
        } else {
            (f64::NAN, f64::NAN, f64::NAN)
        };

        // Determinism across worker-thread counts on one mid-size point:
        // the tiled fan-out must be bit-identical at any thread count.
        if n == det_n {
            for &threads in &THREAD_SWEEP {
                mdg_par::set_threads(threads);
                let again = HierPlanner::new()
                    .plan(&net)
                    .expect("uniform field is feasible");
                mdg_par::set_threads(0);
                assert_eq!(
                    hier_plan, again,
                    "hier plan diverged at {threads} threads — determinism broken"
                );
            }
        }

        t.push_row(vec![
            n as f64,
            side,
            build_ms,
            hier_ms,
            hm.n_polling_points as f64,
            hm.tour_length,
            stats.n_occupied as f64,
            stats.spliced_stops as f64,
            flat_ms,
            flat_tour,
            ratio,
        ]);
        println!(
            "  scale_hier: n = {n:>7}  build {build_ms:>9.1} ms  hier {hier_ms:>9.1} ms  \
             {} polling points, tour {:.1} m, {} tiles{}",
            hm.n_polling_points,
            hm.tour_length,
            stats.n_occupied,
            if ratio.is_finite() {
                format!(", {ratio:.3}x flat")
            } else {
                String::new()
            }
        );
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    t.notes = format!(
        "Single topology per point (seed = base_seed); constant density as in S1. Every hier \
         plan is validated for full coverage; where flat also runs (n <= {FLAT_LIMIT}) the \
         sweep asserts tour_ratio <= {QUALITY_GATE}. The n = {det_n} point re-plans at \
         1/2/8 worker threads and asserts bit-identical plans. Auto tile sizing \
         (~2048 sensors per tile, HierConfig default {:?} target). Host had {cores} CPU \
         core(s) available — hier beats flat even single-threaded because per-tile \
         covering avoids the flat planner's superlinear candidate scan.",
        HierConfig::default().target_per_tile
    );
    if let Ok(path) = std::env::var("MDG_SCALE_HIER_JSON") {
        if !path.is_empty() {
            match serde_json::to_string_pretty(&t) {
                Ok(json) => {
                    if let Err(e) = std::fs::write(&path, json + "\n") {
                        eprintln!("could not write {path}: {e}");
                    }
                }
                Err(e) => eprintln!("could not serialize scale_hier table: {e}"),
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_compares_against_flat_and_checks_determinism() {
        let t = scale_hier(&Params::smoke());
        assert_eq!(t.rows.len(), 2);
        let pps = t.col("hier_polling_points").unwrap();
        let tour = t.col("hier_tour_m").unwrap();
        let ratio = t.col("tour_ratio").unwrap();
        for row in &t.rows {
            assert!(row[pps] >= 1.0);
            assert!(row[tour].is_finite() && row[tour] > 0.0);
            // Smoke points are all small enough for the flat comparison.
            assert!(row[ratio].is_finite() && row[ratio] <= QUALITY_GATE);
        }
    }
}
