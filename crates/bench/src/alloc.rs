//! S8 — allocation budget of the warm incremental path.
//!
//! Runs a hierarchical session through the same deterministic churn as S6,
//! but under the counting global allocator, and reports what the scratch
//! arenas buy: the cold plan's allocation bill (count/bytes/peak) next to
//! the *steady-state* allocations-per-delta once the pools have reached
//! their high-water capacities. The first few deltas after a cold plan
//! still grow buffers (the pools are empty); the steady window starts
//! after a warm-up so the number reported is the recurring cost a
//! long-lived daemon actually pays per delta — O(dirty tiles), not O(n).
//!
//! The committed `BENCH_alloc.json` snapshot of this table is the baseline
//! for CI's allocation-regression gate: a change that makes steady-state
//! `allocs_per_delta` exceed the checked-in figure by more than 10% fails
//! the build. Refresh the baseline with:
//!
//! ```console
//! $ MDG_ALLOC_JSON=BENCH_alloc.json \
//!   cargo run --release -p mdg-bench --bin experiments -- alloc
//! ```
//!
//! The experiment reads *process-wide* allocator totals, so its absolute
//! numbers are only exact when it runs alone in the process (the
//! `experiments` binary; CI's gate). Inside `cargo test` other tests
//! allocate concurrently, so the in-experiment assertions stay
//! structural.

use crate::params::{Params, Profile};
use crate::serve_hier::churn_round;
use crate::table::Table;
use mdg_core::PlannerConfig;
use mdg_net::DeploymentConfig;
use mdg_obs::alloc::{counting, set_counting, totals};
use mdg_serve::session::FieldSession;

/// Transmission range for every sweep point (the paper's `R = 30 m`).
const RANGE: f64 = 30.0;

/// Deltas applied before the measured window: lets every scratch pool
/// reach its high-water capacity so the window sees steady state only.
const WARMUP_ROUNDS: usize = 4;

/// Field sizes swept per profile, constant density (side = sqrt(n)·10).
/// The 20k floor matches CI's alloc-gate point: big enough that the field
/// tiles (so deltas stay incremental), small enough for a debug-build CI
/// loop.
fn sweep(p: &Params) -> &'static [usize] {
    match p.profile {
        Profile::Smoke => &[20_000],
        Profile::Default => &[20_000, 100_000],
        Profile::Full => &[20_000, 100_000, 1_000_000],
    }
}

/// Measured steady-state deltas per sweep point. Identical in every
/// profile on purpose: allocation counts are exactly deterministic, and
/// CI's smoke-profile run is gated against the committed full-profile
/// baseline — a shorter window would still contain pool-growth rounds
/// and read systematically high (12 rounds measures ~25% more allocs
/// per delta than 24 at n = 20k). Profiles differ only in the n-sweep,
/// which is the expensive axis.
fn steady_rounds(_p: &Params) -> usize {
    24
}

/// S8: cold-plan allocation bill vs steady-state allocations per warm
/// dirty-tile delta, hier sessions at every point.
pub fn alloc(p: &Params) -> Table {
    let mut t = Table::new(
        "alloc_budget",
        "Allocation budget: cold hier plan vs steady-state warm delta (counting allocator)",
        &[
            "n_sensors",
            "cold_allocs",
            "cold_mib",
            "warm_rounds",
            "allocs_per_delta",
            "kib_per_delta",
            "peak_mib",
            "reuse_ratio",
        ],
    );
    let was_counting = counting();
    set_counting(true);
    for &n in sweep(p) {
        let side = (n as f64).sqrt() * 10.0;
        let deployment = DeploymentConfig::uniform(n, side).generate(p.base_seed);
        let rounds = WARMUP_ROUNDS + steady_rounds(p);

        let base = totals();
        // Threshold 0: the session is hierarchical at every n, same as S6.
        let mut session =
            FieldSession::plan_cold_auto("s8", deployment, RANGE, PlannerConfig::default(), 0)
                .expect("alloc bench: cold plan");
        let cold = totals().since(&base);

        for round in 0..WARMUP_ROUNDS {
            let (died, added) = churn_round(n, side, round, rounds);
            session
                .apply_delta(&died, &added, None)
                .expect("alloc bench: warm-up delta");
        }

        let base = totals();
        for round in WARMUP_ROUNDS..rounds {
            let (died, added) = churn_round(n, side, round, rounds);
            session
                .apply_delta(&died, &added, None)
                .expect("alloc bench: steady delta");
        }
        let steady = totals().since(&base);

        let r = steady_rounds(p) as f64;
        let allocs_per_delta = steady.count as f64 / r;
        let kib_per_delta = steady.bytes as f64 / r / 1024.0;
        let peak_mib = steady.peak as f64 / (1024.0 * 1024.0);
        let cold_mib = cold.bytes as f64 / (1024.0 * 1024.0);
        let reuse_ratio = cold.count as f64 / allocs_per_delta.max(1.0);

        // Structural sanity only — see the module docs on process-wide
        // totals under `cargo test`.
        assert!(cold.count > 0, "counting allocator recorded nothing");
        assert!(
            allocs_per_delta.is_finite() && allocs_per_delta > 0.0,
            "steady window recorded no allocations"
        );

        t.push_row(vec![
            n as f64,
            cold.count as f64,
            cold_mib,
            r,
            allocs_per_delta,
            kib_per_delta,
            peak_mib,
            reuse_ratio,
        ]);
        println!(
            "  alloc: n = {n:>7}  cold {:>10} allocs / {cold_mib:>8.1} MiB  \
             steady {allocs_per_delta:>10.0} allocs/delta / {kib_per_delta:>9.1} KiB  \
             reuse {reuse_ratio:>7.0}x",
            cold.count
        );
    }
    set_counting(was_counting);
    t.notes = format!(
        "Counting global allocator over one hierarchical session per point (hier_threshold = 0), \
         S6's deterministic churn. cold_* is the full cold plan's bill; allocs_per_delta / \
         kib_per_delta average the {WARMUP_ROUNDS}-round-warmed steady window, so they exclude \
         pool growth; peak_mib is the high-water live-byte mark during that window; reuse_ratio \
         = cold_allocs / allocs_per_delta. The committed BENCH_alloc.json row at n = 20000 is \
         CI's regression baseline (fail at > 10% more allocs per delta). Numbers are process-wide \
         and only exact when the experiment runs alone in the process."
    );
    if let Ok(path) = std::env::var("MDG_ALLOC_JSON") {
        if !path.is_empty() {
            match serde_json::to_string_pretty(&t) {
                Ok(json) => {
                    if let Err(e) = std::fs::write(&path, json + "\n") {
                        eprintln!("could not write {path}: {e}");
                    }
                }
                Err(e) => eprintln!("could not serialize alloc table: {e}"),
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_alloc_budget_reports_finite_positive_figures() {
        let t = alloc(&Params::smoke());
        assert_eq!(t.rows.len(), 1);
        for col in ["cold_allocs", "allocs_per_delta", "kib_per_delta"] {
            let i = t.col(col).unwrap();
            for row in &t.rows {
                assert!(
                    row[i].is_finite() && row[i] > 0.0,
                    "{col} must be finite and positive, got {}",
                    row[i]
                );
            }
        }
    }
}
