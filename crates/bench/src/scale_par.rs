//! S2 — parallel scaling sweep.
//!
//! Times the full SHDG planning pipeline on ONE fixed topology while the
//! `mdg-par` worker-thread count sweeps 1/2/4/8: the complement of the S1
//! sweep (which fixes threads and grows `n`). The field matches an S1
//! point — constant density, side = `sqrt(n) * 10`, `R = 30 m` — with
//! `n = 20 000` by default and `n = 2 000` under the smoke profile.
//!
//! Besides wall-clock, every row records `polling_points` and `tour_m`,
//! and the sweep asserts the *entire plan* is bit-identical across thread
//! counts — the hard invariant of the `mdg-par` layer. A speedup column
//! normalizes against the single-thread row.
//!
//! Setting `MDG_SCALE_PAR_JSON` to a path also writes the table there as
//! JSON (used to refresh the committed `BENCH_scale_par.json`).

use crate::params::{Params, Profile};
use crate::table::Table;
use mdg_core::{PlanMetrics, ShdgPlanner};
use mdg_net::{DeploymentConfig, Network};
use std::time::Instant;

/// Transmission range for every sweep point (the paper's `R = 30 m`).
const RANGE: f64 = 30.0;

/// Worker-thread counts swept, smallest first so the speedup baseline is
/// always row 0.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Fixed sensor count per profile.
fn n_sensors(p: &Params) -> usize {
    match p.profile {
        Profile::Smoke => 2_000,
        _ => 20_000,
    }
}

/// S2: planning wall-clock vs worker-thread count on a fixed field.
pub fn scale_par(p: &Params) -> Table {
    let n = n_sensors(p);
    let side = (n as f64).sqrt() * 10.0;
    let mut t = Table::new(
        "scale_par_sweep",
        "Parallel planner scaling on a fixed field (n fixed, threads = 1/2/4/8, R = 30 m)",
        &[
            "threads",
            "n_sensors",
            "plan_ms",
            "speedup",
            "polling_points",
            "tour_m",
        ],
    );
    let net = Network::build(
        DeploymentConfig::uniform(n, side).generate(p.base_seed),
        RANGE,
    );
    let mut baseline_ms = f64::NAN;
    let mut baseline_plan = None;
    for &threads in &THREAD_SWEEP {
        mdg_par::set_threads(threads);
        let t_plan = Instant::now();
        let plan = ShdgPlanner::new()
            .plan(&net)
            .expect("uniform field is feasible");
        let plan_ms = t_plan.elapsed().as_secs_f64() * 1e3;
        let m = PlanMetrics::of(&plan, &net.deployment.sensors);
        match &baseline_plan {
            None => {
                baseline_ms = plan_ms;
                baseline_plan = Some(plan);
            }
            Some(base) => assert_eq!(
                *base, plan,
                "plan diverged at {threads} threads — mdg-par determinism broken"
            ),
        }
        let speedup = baseline_ms / plan_ms;
        t.push_row(vec![
            threads as f64,
            n as f64,
            plan_ms,
            speedup,
            m.n_polling_points as f64,
            m.tour_length,
        ]);
        println!(
            "  scale_par: n = {n:>6}  threads {threads}  plan {plan_ms:>9.1} ms  \
             speedup {speedup:.2}x  {} polling points, tour {:.1} m",
            m.n_polling_points, m.tour_length
        );
    }
    mdg_par::set_threads(0); // Back to auto for whatever runs next.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    t.notes = format!(
        "Single topology (seed = base_seed) planned once per thread count; speedup is \
         plan_ms(1 thread) / plan_ms(t threads). The sweep asserts plans are bit-identical \
         across thread counts, so polling_points and tour_m must match in every row. \
         Host had {cores} CPU core(s) available: speedup saturates at the core count \
         (on a 1-core host every row measures scheduling overhead, not scaling)."
    );
    if let Ok(path) = std::env::var("MDG_SCALE_PAR_JSON") {
        if !path.is_empty() {
            match serde_json::to_string_pretty(&t) {
                Ok(json) => {
                    if let Err(e) = std::fs::write(&path, json + "\n") {
                        eprintln!("could not write {path}: {e}");
                    }
                }
                Err(e) => eprintln!("could not serialize scale_par table: {e}"),
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_covers_all_thread_counts() {
        let t = scale_par(&Params::smoke());
        assert_eq!(t.rows.len(), THREAD_SWEEP.len());
        let threads = t.col("threads").unwrap();
        let pps = t.col("polling_points").unwrap();
        let tour = t.col("tour_m").unwrap();
        let speedup = t.col("speedup").unwrap();
        for (row, &want) in t.rows.iter().zip(&THREAD_SWEEP) {
            assert_eq!(row[threads], want as f64);
            // Determinism: the sweep itself asserts plan equality; the
            // published columns must reflect it bit-for-bit.
            assert_eq!(row[pps], t.rows[0][pps]);
            assert_eq!(row[tour], t.rows[0][tour]);
            assert!(row[speedup].is_finite() && row[speedup] > 0.0);
        }
    }
}
