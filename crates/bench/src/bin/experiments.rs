//! Experiment harness CLI.
//!
//! ```text
//! experiments <id>... [--quick | --full] [--seed S] [--replicates N] [--out DIR]
//! experiments all [flags]
//! experiments list
//! ```
//!
//! Each experiment prints a markdown table to stdout and writes a CSV into
//! the output directory (default `results/`).

use mdg_bench::{run_experiment, Params, ALL_EXPERIMENTS};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments <id|all|list>... [--quick|--full] [--seed S] [--replicates N] [--out DIR]\n\
         experiments: {}",
        ALL_EXPERIMENTS.join(", ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }

    let mut params = Params::default();
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => params = Params::smoke(),
            "--full" => params = Params::full(),
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => params.base_seed = s,
                None => return usage(),
            },
            "--replicates" => match it.next().and_then(|s| s.parse().ok()) {
                Some(r) if r > 0 => params.replicates = r,
                _ => return usage(),
            },
            "--out" => match it.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => return usage(),
            },
            "list" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            flag if flag.starts_with("--") => return usage(),
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        return usage();
    }

    println!(
        "running {} experiment(s), {} replicates per point, base seed {}\n",
        ids.len(),
        params.replicates,
        params.base_seed
    );
    for id in &ids {
        let start = std::time::Instant::now();
        let Some(table) = run_experiment(id, &params) else {
            eprintln!("unknown experiment: {id}");
            return usage();
        };
        println!("{}", table.to_markdown());
        match table.write_csv(&out_dir) {
            Ok(path) => {
                println!(
                    "wrote {} ({:.1} s)\n",
                    path.display(),
                    start.elapsed().as_secs_f64()
                )
            }
            Err(e) => eprintln!("could not write CSV for {id}: {e}"),
        }
    }
    ExitCode::SUCCESS
}
