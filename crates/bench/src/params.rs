//! Experiment parameters.

use mdg_sim::SimConfig;
use serde::{Deserialize, Serialize};

/// Sweep scale: how big the parameter sweeps are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Profile {
    /// Tiny sweeps for CI smoke tests (runs in seconds even in debug).
    Smoke,
    /// Laptop-scale sweeps (the default; minutes in release mode).
    Default,
    /// Paper-scale sweeps and replication (500 topologies per point).
    Full,
}

/// Global experiment parameters. Defaults mirror the paper's setup: square
/// fields, sink at the center, `R = 30 m`, collector at 1 m/s, results
/// averaged over many random topologies per point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Random topologies averaged per data point (the paper uses 500; the
    /// default here is laptop-scale).
    pub replicates: usize,
    /// Base RNG seed; replicate `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Timing/energy parameters shared by all simulated schemes.
    pub sim: SimConfig,
    /// Initial battery per sensor in joules (lifetime experiments).
    pub battery_j: f64,
    /// Round cap for lifetime simulations.
    pub max_rounds: u64,
    /// Sweep scale.
    pub profile: Profile,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            replicates: 25,
            base_seed: 42,
            sim: SimConfig::default(),
            battery_j: 1.0,
            max_rounds: 50_000,
            profile: Profile::Default,
        }
    }
}

impl Params {
    /// Paper-scale replication (500 topologies per point). Slow.
    pub fn full() -> Self {
        Params {
            replicates: 500,
            profile: Profile::Full,
            ..Params::default()
        }
    }

    /// Minimal parameters for CI smoke tests: 2 replicates, capped rounds.
    pub fn smoke() -> Self {
        Params {
            replicates: 2,
            max_rounds: 2_000,
            battery_j: 0.05,
            profile: Profile::Smoke,
            ..Params::default()
        }
    }

    /// Seed for replicate `i`.
    pub fn seed(&self, i: usize) -> u64 {
        self.base_seed.wrapping_add(i as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(Params::full().replicates > Params::default().replicates);
        assert!(Params::smoke().replicates < Params::default().replicates);
        assert_eq!(Params::default().seed(0), 42);
        assert_eq!(Params::default().seed(3), 45);
    }
}
