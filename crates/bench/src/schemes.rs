//! Uniform per-scheme evaluation on one topology.
//!
//! Every figure compares schemes over *identical* seeded topologies; these
//! helpers run one scheme on one [`Network`] and distill the quantities
//! the tables report.

use mdg_baselines::cme::cme_scenario;
use mdg_baselines::{plan_cme, visit_all_plan, DirectMetrics, MultihopMetrics};
use mdg_core::{PlanMetrics, ShdgPlanner};
use mdg_net::Network;
use mdg_sim::{scenario_from_plan, MobileGatheringSim, MultihopRoutingSim, SimConfig};

/// One scheme's result on one topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemePoint {
    /// Collector travel per round in meters (0 for static routing).
    pub tour_length: f64,
    /// Collector stops / polling points (0 for static routing).
    pub n_stops: f64,
    /// Mean relay hops per delivered packet *before* upload (0 = pure
    /// single-hop; for static routing, hops all the way to the sink).
    pub relay_hops: f64,
    /// Total sensor-side joules per round.
    pub energy_j: f64,
    /// Jain fairness of per-sensor energy.
    pub fairness: f64,
    /// Round duration in seconds (simulated).
    pub latency_s: f64,
    /// Fraction of packets collected.
    pub delivery: f64,
    /// Total sensor transmissions per round.
    pub transmissions: f64,
}

/// Evaluates the SHDG planner + one simulated round.
pub fn eval_shdg(net: &Network, sim: &SimConfig) -> SchemePoint {
    let plan = ShdgPlanner::new()
        .plan(net)
        .expect("sensor-site planning is total");
    let metrics = PlanMetrics::of(&plan, &net.deployment.sensors);
    let scen = scenario_from_plan(&plan, &net.deployment.sensors);
    let r = MobileGatheringSim::new(scen, *sim).run();
    SchemePoint {
        tour_length: plan.tour_length,
        n_stops: metrics.n_polling_points as f64,
        relay_hops: 0.0,
        energy_j: r.total_joules(),
        fairness: r.ledger.fairness(),
        latency_s: r.duration_secs,
        delivery: r.delivery_ratio(),
        transmissions: r.total_transmissions() as f64,
    }
}

/// Evaluates the visit-every-sensor tour + one simulated round.
pub fn eval_visit_all(net: &Network, sim: &SimConfig) -> SchemePoint {
    let plan = visit_all_plan(net);
    let scen = scenario_from_plan(&plan, &net.deployment.sensors);
    let r = MobileGatheringSim::new(scen, *sim).run();
    SchemePoint {
        tour_length: plan.tour_length,
        n_stops: plan.n_polling_points() as f64,
        relay_hops: 0.0,
        energy_j: r.total_joules(),
        fairness: r.ledger.fairness(),
        latency_s: r.duration_secs,
        delivery: r.delivery_ratio(),
        transmissions: r.total_transmissions() as f64,
    }
}

/// Evaluates the CME fixed-track scheme + one simulated round.
pub fn eval_cme(net: &Network, n_tracks: usize, sim: &SimConfig) -> SchemePoint {
    let plan = plan_cme(net, n_tracks);
    let scen = cme_scenario(&plan, net);
    let r = MobileGatheringSim::new(scen, *sim).run();
    SchemePoint {
        tour_length: plan.path_length,
        n_stops: plan.uploads.len() as f64,
        relay_hops: plan.mean_relay_hops(),
        energy_j: r.total_joules(),
        fairness: r.ledger.fairness(),
        latency_s: r.duration_secs,
        delivery: r.delivery_ratio(),
        transmissions: r.total_transmissions() as f64,
    }
}

/// Evaluates static multi-hop routing + one simulated round.
pub fn eval_multihop(net: &Network, sim: &SimConfig) -> SchemePoint {
    let m = MultihopMetrics::of(net);
    let r = MultihopRoutingSim::new(net, *sim).run();
    SchemePoint {
        tour_length: 0.0,
        n_stops: 0.0,
        relay_hops: m.mean_hops,
        energy_j: r.total_joules(),
        fairness: r.ledger.fairness(),
        latency_s: r.duration_secs,
        delivery: r.delivery_ratio(),
        transmissions: r.total_transmissions() as f64,
    }
}

/// Evaluates direct transmission (analytic; no DES needed: one tx per
/// sensor straight to the sink).
pub fn eval_direct(net: &Network, sim: &SimConfig) -> SchemePoint {
    let (m, ledger) = DirectMetrics::of(net, sim.radio);
    SchemePoint {
        tour_length: 0.0,
        n_stops: 0.0,
        relay_hops: 0.0,
        energy_j: m.total_joules,
        fairness: m.fairness,
        latency_s: sim.hop_secs,
        delivery: 1.0,
        transmissions: ledger.total_tx() as f64,
    }
}

/// Number of CME tracks the paper's settings imply: tracks 100 m apart
/// with one through the middle (≥ 1).
pub fn cme_tracks_for_field(side: f64) -> usize {
    ((side / 100.0).round() as usize + 1).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_net::DeploymentConfig;

    fn net(seed: u64) -> Network {
        Network::build(DeploymentConfig::uniform(150, 200.0).generate(seed), 30.0)
    }

    #[test]
    fn shdg_dominates_on_the_expected_axes() {
        let net = net(1);
        let sim = SimConfig::default();
        let shdg = eval_shdg(&net, &sim);
        let va = eval_visit_all(&net, &sim);
        let mh = eval_multihop(&net, &sim);
        // Tour: SHDG ≪ visit-all.
        assert!(shdg.tour_length < va.tour_length);
        // Transmissions: SHDG = N exactly; multi-hop strictly more when
        // any sensor is ≥ 2 hops out.
        assert_eq!(shdg.transmissions as usize, net.n_sensors());
        assert!(mh.transmissions > shdg.transmissions);
        // Energy fairness: mobile single-hop is near-perfect; routing
        // funnels energy toward the sink.
        assert!(shdg.fairness > mh.fairness);
        // Latency: routing wins by orders of magnitude.
        assert!(mh.latency_s < shdg.latency_s / 100.0);
        // Everyone delivers on a connected topology.
        assert!(shdg.delivery >= va.delivery && va.delivery == 1.0);
    }

    #[test]
    fn cme_sits_between_extremes() {
        let net = net(2);
        let sim = SimConfig::default();
        let cme = eval_cme(&net, 3, &sim);
        let shdg = eval_shdg(&net, &sim);
        // CME relays without bound → nonzero relay hops; SHDG has none.
        assert!(cme.relay_hops > 0.0);
        assert_eq!(shdg.relay_hops, 0.0);
        // CME's fixed path on a 200 m field with 3 tracks is longer than
        // the adaptive SHDG tour.
        assert!(cme.tour_length > shdg.tour_length);
    }

    #[test]
    fn direct_burns_the_most_energy() {
        let net = net(3);
        let sim = SimConfig::default();
        let d = eval_direct(&net, &sim);
        let shdg = eval_shdg(&net, &sim);
        assert!(d.energy_j > shdg.energy_j);
        assert_eq!(d.transmissions as usize, net.n_sensors());
    }

    #[test]
    fn track_count_heuristic() {
        assert_eq!(cme_tracks_for_field(200.0), 3);
        assert_eq!(cme_tracks_for_field(500.0), 6);
        assert_eq!(cme_tracks_for_field(50.0), 2);
    }
}
