//! S6 — hierarchical serving-layer churn benchmark.
//!
//! Measures what the dirty-tile incremental path buys at scales the flat
//! session cannot reach: an in-process [`Server`] with the hier threshold
//! at zero (every session hierarchical) is driven over a real TCP socket
//! through a cold `plan` followed by a stream of small `delta` requests,
//! and each point reports the cold hier-plan latency against the
//! warm-delta latency distribution (p50/p99), the speedup, and how many
//! deltas escalated to a full tiled rebuild.
//!
//! The headline gate is the million-sensor point (Full profile): warm
//! dirty-tile deltas must land ≥ 20× under the cold hierarchical plan
//! with **zero** full rebuilds under small-delta churn — a small delta
//! dirties a handful of the ~500 occupied tiles, so the work is a few
//! tile re-plans plus a re-stitch, not a field-wide pass. Every profile
//! additionally replays the smallest point's churn in-process at 1 and 2
//! worker threads and asserts the final plans are bit-identical to the
//! daemon's (the determinism contract through the serving stack).
//!
//! Latencies are the *server-side* `elapsed_ms` figures, so the numbers
//! isolate planning cost from socket round-trips; `req_per_s` is
//! client-observed wall-clock over the churn stream.
//!
//! Setting `MDG_SERVE_HIER_JSON` to a path also writes the table there as
//! JSON (used to refresh the committed `BENCH_serve_hier.json`).

use crate::params::{Params, Profile};
use crate::table::Table;
use mdg_core::PlannerConfig;
use mdg_geom::Point;
use mdg_net::DeploymentConfig;
use mdg_serve::client::Client;
use mdg_serve::server::{ServeConfig, Server};
use mdg_serve::session::FieldSession;
use std::time::Instant;

/// Transmission range for every sweep point (the paper's `R = 30 m`).
const RANGE: f64 = 30.0;

/// Speedup gate at the million-sensor point: warm dirty-tile deltas must
/// be at least this much faster than the cold hierarchical plan.
const FULL_SPEEDUP_GATE: f64 = 20.0;

/// Field sizes swept per profile, constant density (side = sqrt(n)·10).
/// The floor is 10k sensors: under auto tile sizing a smaller field is a
/// single tile, where every delta legitimately escalates to a rebuild and
/// there is no incremental path to measure.
fn sweep(p: &Params) -> &'static [usize] {
    match p.profile {
        Profile::Smoke => &[10_000],
        Profile::Default => &[10_000, 50_000],
        Profile::Full => &[10_000, 50_000, 1_000_000],
    }
}

/// Delta rounds per sweep point.
fn rounds(p: &Params) -> usize {
    match p.profile {
        Profile::Smoke => 10,
        _ => 40,
    }
}

/// Deaths per churn round: a small scatter that dirties a handful of
/// tiles. Deliberately *sub*-linear in n — the point of the experiment is
/// small-delta churn, where the dirty-tile set stays far below the 50%
/// escalation bar even on a million-sensor field.
fn deaths_per_round(n: usize) -> usize {
    (n / 100_000).max(2)
}

/// The deterministic churn for one round of one sweep point (shared by
/// the daemon stream, the in-process determinism replay, and the S8
/// allocation experiment).
pub(crate) fn churn_round(
    n: usize,
    side: f64,
    round: usize,
    total_rounds: usize,
) -> (Vec<u64>, Vec<Point>) {
    let died: Vec<u64> = (0..deaths_per_round(n))
        .map(|i| ((round * 7919 + i * 104_729) % n) as u64)
        .collect();
    let added = if round % 4 == 3 {
        let f = (round + 1) as f64 / (total_rounds + 1) as f64;
        vec![Point::new(side * f, side * (1.0 - f))]
    } else {
        Vec::new()
    };
    (died, added)
}

/// Percentile of a latency sample (nearest-rank).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Replays one sweep point's full churn sequence in-process at a fixed
/// worker-thread count and returns the final tour length.
fn replay_in_process(n: usize, side: f64, seed: u64, r: usize, threads: usize) -> f64 {
    mdg_par::set_threads(threads);
    let mut session = FieldSession::plan_cold_auto(
        "det",
        DeploymentConfig::uniform(n, side).generate(seed),
        RANGE,
        PlannerConfig::default(),
        0,
    )
    .expect("serve_hier bench: in-process cold plan");
    for round in 0..r {
        let (died, added) = churn_round(n, side, round, r);
        session
            .apply_delta(&died, &added, None)
            .expect("serve_hier bench: in-process delta");
    }
    mdg_par::set_threads(0);
    session.plan().tour_length
}

/// S6: warm dirty-tile delta latency vs cold hierarchical plan latency
/// under sustained small-delta churn, hier sessions at every point.
pub fn serve_hier(p: &Params) -> Table {
    let mut t = Table::new(
        "serve_hier_churn",
        "Hier serving layer under churn (cold hier plan vs warm dirty-tile delta, R = 30 m)",
        &[
            "n_sensors",
            "rounds",
            "cold_ms",
            "delta_p50_ms",
            "delta_p99_ms",
            "speedup_p50",
            "req_per_s",
            "full_replans",
        ],
    );
    // Threshold 0: every session in this experiment is hierarchical, so
    // the comparison is cold tiled plan vs dirty-tile delta at every n.
    // The sensor bound leaves headroom over the 1M point for the sensors
    // churn adds on top of the initial deployment.
    let server = Server::start(ServeConfig {
        hier_threshold: 0,
        max_sensors: 2_000_000,
        ..ServeConfig::default()
    })
    .expect("serve_hier bench: bind failed");
    let mut client =
        Client::connect(server.local_addr()).expect("serve_hier bench: connect failed");
    let det_n = sweep(p)[0];
    for &n in sweep(p) {
        let side = (n as f64).sqrt() * 10.0;
        let field = format!("s6-{n}");
        let cold = client
            .plan_uniform(&field, n as u64, side, p.base_seed, RANGE)
            .expect("serve_hier bench: plan transport")
            .expect("serve_hier bench: plan rejected");
        let r = rounds(p);
        let mut latencies = Vec::with_capacity(r);
        let mut full_replans = 0u64;
        let t_churn = Instant::now();
        for round in 0..r {
            let (died, added) = churn_round(n, side, round, r);
            let summary = client
                .delta(&field, died, added, None)
                .expect("serve_hier bench: delta transport")
                .expect("serve_hier bench: delta rejected");
            if summary.mode == "replan" {
                full_replans += 1;
            }
            latencies.push(summary.elapsed_ms);
        }
        let churn_secs = t_churn.elapsed().as_secs_f64();
        latencies.sort_by(|a, b| a.total_cmp(b));
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);
        let speedup = cold.elapsed_ms / p50.max(1e-9);
        let req_per_s = r as f64 / churn_secs.max(1e-9);

        // The headline acceptance gates, asserted where they apply.
        assert!(
            speedup > 1.0,
            "n = {n}: warm dirty-tile deltas (p50 {p50:.2} ms) must beat the cold hier plan \
             ({:.1} ms)",
            cold.elapsed_ms
        );
        if n >= 1_000_000 {
            assert!(
                speedup >= FULL_SPEEDUP_GATE,
                "n = {n}: delta p50 {p50:.2} ms is only {speedup:.1}x under the cold plan \
                 {:.1} ms (gate {FULL_SPEEDUP_GATE}x)",
                cold.elapsed_ms
            );
            assert_eq!(
                full_replans, 0,
                "n = {n}: small-delta churn must never escalate to a full rebuild"
            );
        }

        // Determinism through the serving stack: replay the smallest
        // point's churn in-process at 1 and 2 workers; both must end at
        // byte-identical tours, and match what the daemon served.
        if n == det_n {
            let served = client
                .get_plan(&field)
                .expect("serve_hier bench: get_plan transport")
                .expect("serve_hier bench: get_plan rejected")
                .plan
                .tour_length;
            let one = replay_in_process(n, side, p.base_seed, r, 1);
            let two = replay_in_process(n, side, p.base_seed, r, 2);
            assert_eq!(
                one.to_bits(),
                two.to_bits(),
                "n = {n}: churned tour diverged between 1 and 2 worker threads"
            );
            assert_eq!(
                one.to_bits(),
                served.to_bits(),
                "n = {n}: daemon's churned tour differs from the in-process replay"
            );
        }

        t.push_row(vec![
            n as f64,
            r as f64,
            cold.elapsed_ms,
            p50,
            p99,
            speedup,
            req_per_s,
            full_replans as f64,
        ]);
        println!(
            "  serve_hier: n = {n:>7}  cold {:>9.1} ms  delta p50 {p50:>8.2} ms  p99 {p99:>8.2} ms  \
             speedup {speedup:>7.1}x  {full_replans} full rebuild(s)",
            cold.elapsed_ms
        );
    }
    client
        .shutdown()
        .expect("serve_hier bench: shutdown transport")
        .expect("serve_hier bench: shutdown rejected");
    server.join();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    t.notes = format!(
        "One warm hierarchical session per point (hier_threshold = 0, auto tile sizing); deltas \
         kill max(2, n/100000) deterministic sensors per round and add one sensor every 4th round. \
         Latencies are server-side wall time; speedup_p50 = cold_ms / delta_p50_ms. Gates: warm \
         deltas beat the cold plan at every n; at n = 1M, p50 >= {FULL_SPEEDUP_GATE}x under cold \
         with 0 full rebuilds. The smallest point's churn is replayed in-process at 1 and 2 \
         worker threads and must match the daemon's tour bit-for-bit. Host had {cores} CPU \
         core(s) available."
    );
    if let Ok(path) = std::env::var("MDG_SERVE_HIER_JSON") {
        if !path.is_empty() {
            match serde_json::to_string_pretty(&t) {
                Ok(json) => {
                    if let Err(e) = std::fs::write(&path, json + "\n") {
                        eprintln!("could not write {path}: {e}");
                    }
                }
                Err(e) => eprintln!("could not serialize serve_hier table: {e}"),
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_hier_churn_beats_cold_plan() {
        let t = serve_hier(&Params::smoke());
        assert_eq!(t.rows.len(), 1);
        let speedup = t.col("speedup_p50").unwrap();
        let p50 = t.col("delta_p50_ms").unwrap();
        let p99 = t.col("delta_p99_ms").unwrap();
        for row in &t.rows {
            assert!(row[speedup] > 1.0, "warm deltas must beat the cold plan");
            assert!(row[p50] <= row[p99], "percentiles must be ordered");
        }
    }
}
