//! # mdg-bench — experiment harness reproducing the paper's evaluation
//!
//! One function per table/figure of the evaluation (reconstructed — see the
//! repository's `DESIGN.md` and `EXPERIMENTS.md` for the per-experiment
//! index). Each function sweeps the figure's parameter, replays every
//! scheme over identical seeded topologies, averages across replicates in
//! parallel (std threads), and returns a [`table::Table`] that the `experiments`
//! binary prints as markdown and CSV.
//!
//! The Criterion benches in `benches/` wrap the same per-point workloads
//! for performance tracking.

pub mod alloc;
pub mod faults;
pub mod figures;
pub mod params;
pub mod profile;
pub mod replay;
pub mod runner;
pub mod scale;
pub mod scale_hier;
pub mod scale_par;
pub mod schemes;
pub mod serve;
pub mod serve_hier;
pub mod table;

pub use params::Params;
pub use table::Table;

/// All experiment ids, in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "e1",
    "t1",
    "f1",
    "f2",
    "f3",
    "f4",
    "f5",
    "f6",
    "f7",
    "f8",
    "f9",
    "f10",
    "f11",
    "f12",
    "a1",
    "a2",
    "a3",
    "faults",
    "scale",
    "scale_hier",
    "scale_par",
    "serve",
    "serve_hier",
    "alloc",
    "replay",
    "profile",
];

/// Runs one experiment by id.
pub fn run_experiment(id: &str, params: &Params) -> Option<Table> {
    match id {
        "e1" => Some(figures::e1(params)),
        "t1" => Some(figures::t1(params)),
        "f1" => Some(figures::f1(params)),
        "f2" => Some(figures::f2(params)),
        "f3" => Some(figures::f3(params)),
        "f4" => Some(figures::f4(params)),
        "f5" => Some(figures::f5(params)),
        "f6" => Some(figures::f6(params)),
        "f7" => Some(figures::f7(params)),
        "f8" => Some(figures::f8(params)),
        "f9" => Some(figures::f9(params)),
        "f10" => Some(figures::f10(params)),
        "f11" => Some(figures::f11(params)),
        "f12" => Some(figures::f12(params)),
        "a1" => Some(figures::a1(params)),
        "a2" => Some(figures::a2(params)),
        "a3" => Some(figures::a3(params)),
        "faults" => Some(faults::faults(params)),
        "scale" => Some(scale::scale(params)),
        "scale_hier" => Some(scale_hier::scale_hier(params)),
        "scale_par" => Some(scale_par::scale_par(params)),
        "serve" => Some(serve::serve(params)),
        "serve_hier" => Some(serve_hier::serve_hier(params)),
        "alloc" => Some(alloc::alloc(params)),
        "replay" => Some(replay::replay(params)),
        "profile" => Some(profile::profile(params)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_runs() {
        let p = Params::smoke();
        for id in ALL_EXPERIMENTS {
            let t = run_experiment(id, &p).unwrap_or_else(|| panic!("{id} missing"));
            assert!(!t.rows.is_empty(), "{id} produced no rows");
            assert!(
                t.rows.iter().all(|r| r.len() == t.columns.len()),
                "{id} ragged rows"
            );
        }
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("nope", &Params::smoke()).is_none());
    }
}
