//! Property-based tests for deployments, unit-disk graphs and traversals.

use mdg_net::{
    bfs_hops, bfs_tree, components, dijkstra, multi_source_bfs_hops, udg::build_udg, Csr,
    DeploymentConfig, UNREACHABLE,
};
use proptest::prelude::*;

fn arb_udg() -> impl Strategy<Value = (mdg_net::Deployment, f64)> {
    (5usize..80, 50.0..300.0f64, 10.0..60.0f64, any::<u64>()).prop_map(|(n, side, range, seed)| {
        (DeploymentConfig::uniform(n, side).generate(seed), range)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn udg_matches_brute_force((dep, range) in arb_udg()) {
        let g = build_udg(&dep.sensors, range);
        let mut expect = 0usize;
        for i in 0..dep.n() {
            for j in (i + 1)..dep.n() {
                let d = dep.sensors[i].dist(dep.sensors[j]);
                if (d - range).abs() > 1e-9 {
                    prop_assert_eq!(g.has_edge(i, j), d <= range, "pair ({}, {})", i, j);
                }
                if d <= range {
                    expect += 1;
                }
            }
        }
        prop_assert_eq!(g.m(), expect);
    }

    #[test]
    fn bfs_hops_satisfy_edge_relaxation((dep, range) in arb_udg()) {
        let g = build_udg(&dep.sensors, range);
        if g.n() == 0 { return Ok(()); }
        let h = bfs_hops(&g, 0);
        // For every edge (u,v): |h[u] - h[v]| <= 1 when both reachable.
        for (u, v, _) in g.edges() {
            let (hu, hv) = (h[u as usize], h[v as usize]);
            prop_assert_eq!(hu == UNREACHABLE, hv == UNREACHABLE,
                "edge endpoints must be equi-reachable");
            if hu != UNREACHABLE {
                prop_assert!(hu.abs_diff(hv) <= 1);
            }
        }
        // Hop counts are realized by parent chains.
        let t = bfs_tree(&g, 0);
        #[allow(clippy::needless_range_loop)]
        for v in 0..g.n() {
            if let Some(path) = t.path_to_source(v) {
                prop_assert_eq!(path.len() as u32 - 1, h[v]);
                // Consecutive path nodes are adjacent.
                for w in path.windows(2) {
                    prop_assert!(g.has_edge(w[0] as usize, w[1] as usize));
                }
            }
        }
    }

    #[test]
    fn dijkstra_unit_weights_equal_bfs((dep, range) in arb_udg()) {
        let g = build_udg(&dep.sensors, range);
        if g.n() == 0 { return Ok(()); }
        let unit = Csr::from_edges(
            g.n(),
            &g.edges().map(|(u, v, _)| (u, v, 1.0)).collect::<Vec<_>>(),
        );
        let h = bfs_hops(&g, 0);
        let d = dijkstra(&unit, 0);
        #[allow(clippy::needless_range_loop)]
        for v in 0..g.n() {
            if h[v] == UNREACHABLE {
                prop_assert!(d.dist[v].is_infinite());
            } else {
                prop_assert_eq!(d.dist[v] as u32, h[v]);
            }
        }
    }

    #[test]
    fn dijkstra_respects_triangle_inequality_on_edges((dep, range) in arb_udg()) {
        let g = build_udg(&dep.sensors, range);
        if g.n() == 0 { return Ok(()); }
        let d = dijkstra(&g, 0);
        for (u, v, w) in g.edges() {
            let (du, dv) = (d.dist[u as usize], d.dist[v as usize]);
            if du.is_finite() && dv.is_finite() {
                prop_assert!(dv <= du + w + 1e-9);
                prop_assert!(du <= dv + w + 1e-9);
            }
        }
    }

    #[test]
    fn multi_source_is_min_of_single_sources((dep, range) in arb_udg()) {
        let g = build_udg(&dep.sensors, range);
        if g.n() < 3 { return Ok(()); }
        let sources = [0usize, g.n() / 2, g.n() - 1];
        let multi = multi_source_bfs_hops(&g, &sources);
        let singles: Vec<Vec<u32>> = sources.iter().map(|&s| bfs_hops(&g, s)).collect();
        #[allow(clippy::needless_range_loop)]
        for v in 0..g.n() {
            let want = singles.iter().map(|h| h[v]).min().unwrap();
            prop_assert_eq!(multi[v], want, "node {}", v);
        }
    }

    #[test]
    fn components_are_bfs_reachability_classes((dep, range) in arb_udg()) {
        let g = build_udg(&dep.sensors, range);
        let (_, labels) = components(&g);
        if g.n() == 0 { return Ok(()); }
        let h = bfs_hops(&g, 0);
        #[allow(clippy::needless_range_loop)]
        for v in 0..g.n() {
            prop_assert_eq!(h[v] != UNREACHABLE, labels[v] == labels[0], "node {}", v);
        }
    }

    #[test]
    fn deployment_is_reproducible(n in 1usize..100, side in 10.0..500.0f64, seed in any::<u64>()) {
        let cfg = DeploymentConfig::uniform(n, side);
        let a = cfg.generate(seed);
        let b = cfg.generate(seed);
        prop_assert_eq!(&a.sensors, &b.sensors);
        prop_assert_eq!(a.sink, b.sink);
        for p in &a.sensors {
            prop_assert!(a.field.contains(*p));
        }
    }
}
