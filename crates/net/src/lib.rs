//! # mdg-net — sensor deployments, unit-disk graphs and graph algorithms
//!
//! This crate is the networking substrate of the `mobile-collectors`
//! workspace. It provides:
//!
//! * **Deployment generators** ([`deployment`]): seeded, reproducible sensor
//!   placements over a rectangular field (uniform random, jittered grid,
//!   Gaussian clusters, disconnected corridors) plus sink placement.
//! * **Unit-disk communication graphs** ([`udg`]): two sensors (or a sensor
//!   and the sink) can communicate iff their Euclidean distance is at most
//!   the transmission range `R`. Adjacency is stored in compressed sparse
//!   row ([`graph::Csr`]) form.
//! * **Graph algorithms** ([`traverse`], [`mod@dijkstra`], [`mod@components`]):
//!   BFS hop trees (the minimum-hop routing structure used by the paper's
//!   multi-hop baseline), weighted shortest-path trees, connected
//!   components, and bounded k-hop neighborhood queries.
//!
//! Everything is deterministic given a seed: the experiment harness relies
//! on replaying identical topologies across schemes.

pub mod components;
pub mod deployment;
pub mod dijkstra;
pub mod graph;
pub mod stats;
pub mod traverse;
pub mod udg;
pub mod unionfind;

pub use components::{component_sizes, components, largest_component_nodes};
pub use deployment::{Deployment, DeploymentConfig, SinkPlacement, Topology};
pub use dijkstra::{dijkstra, DijkstraResult};
pub use graph::Csr;
pub use stats::{connectivity_probability, degree_histogram, TopologyStats};
pub use traverse::{bfs_hops, bfs_tree, khop_counts, multi_source_bfs_hops, BfsTree};
pub use udg::{build_udg, Network};

/// Sentinel meaning "unreachable" in hop-count vectors.
pub const UNREACHABLE: u32 = u32::MAX;
