//! Connected components of the communication graph.
//!
//! Mobile collection is evaluated on *disconnected* deployments too — the
//! collector can physically drive between islands that multi-hop routing
//! can never bridge. Component labeling quantifies that.

use crate::graph::Csr;
use crate::unionfind::UnionFind;

/// Labels connected components. Returns `(component_count, labels)` where
/// `labels[v] ∈ 0..component_count` and labels are assigned in order of
/// first appearance by node id.
pub fn components(g: &Csr) -> (usize, Vec<u32>) {
    let n = g.n();
    let mut uf = UnionFind::new(n);
    for (u, v, _) in g.edges() {
        uf.union(u as usize, v as usize);
    }
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n {
        let root = uf.find(v);
        if labels[root] == u32::MAX {
            labels[root] = next;
            next += 1;
        }
        labels[v] = labels[root];
    }
    (next as usize, labels)
}

/// Node ids of the largest connected component (ties broken toward the
/// smaller label). Empty for an empty graph.
pub fn largest_component_nodes(g: &Csr) -> Vec<usize> {
    let (count, labels) = components(g);
    if count == 0 {
        return Vec::new();
    }
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i as u32)
        .unwrap();
    (0..g.n()).filter(|&v| labels[v] == best).collect()
}

/// Sizes of all components, descending.
pub fn component_sizes(g: &Csr) -> Vec<usize> {
    let (count, labels) = components(g);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Components: {0,1,2}, {3,4}, {5}
    fn three_islands() -> Csr {
        Csr::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
    }

    #[test]
    fn counts_and_labels() {
        let g = three_islands();
        let (count, labels) = components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[0], labels[5]);
        assert_ne!(labels[3], labels[5]);
    }

    #[test]
    fn labels_in_first_appearance_order() {
        let (_, labels) = components(&three_islands());
        assert_eq!(labels[0], 0);
        assert_eq!(labels[3], 1);
        assert_eq!(labels[5], 2);
    }

    #[test]
    fn largest_component() {
        let g = three_islands();
        assert_eq!(largest_component_nodes(&g), vec![0, 1, 2]);
    }

    #[test]
    fn sizes_descending() {
        assert_eq!(component_sizes(&three_islands()), vec![3, 2, 1]);
    }

    #[test]
    fn fully_connected_is_one_component() {
        let g = Csr::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let (count, _) = components(&g);
        assert_eq!(count, 1);
        assert_eq!(largest_component_nodes(&g).len(), 4);
    }

    #[test]
    fn empty_and_edgeless() {
        let empty = Csr::from_edges(0, &[]);
        assert_eq!(components(&empty).0, 0);
        assert!(largest_component_nodes(&empty).is_empty());
        let edgeless = Csr::from_edges(3, &[]);
        assert_eq!(components(&edgeless).0, 3);
        assert_eq!(largest_component_nodes(&edgeless).len(), 1);
        assert_eq!(component_sizes(&edgeless), vec![1, 1, 1]);
    }
}
