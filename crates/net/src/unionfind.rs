//! Disjoint-set union (union-find) with path halving and union by size.

/// A classic disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let grandparent = self.parent[self.parent[x] as usize];
            self.parent[x] = grandparent;
            x = grandparent as usize;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.sets -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert!(!uf.connected(0, 1));
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already connected");
        assert_eq!(uf.set_count(), 3);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.size_of(2), 3);
        assert_eq!(uf.size_of(3), 1);
    }

    #[test]
    fn full_merge() {
        let mut uf = UnionFind::new(8);
        for i in 1..8 {
            uf.union(0, i);
        }
        assert_eq!(uf.set_count(), 1);
        for i in 0..8 {
            assert!(uf.connected(0, i));
        }
        assert_eq!(uf.size_of(7), 8);
    }

    #[test]
    fn empty_and_single() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
        let mut one = UnionFind::new(1);
        assert_eq!(one.find(0), 0);
        assert_eq!(one.set_count(), 1);
    }
}
