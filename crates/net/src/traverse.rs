//! Breadth-first traversals: hop distances, BFS trees, bounded k-hop
//! neighborhoods.
//!
//! BFS from the sink over the full graph yields the minimum-hop routing
//! structure of the paper's multi-hop baseline; bounded k-hop counts drive
//! polling-point priorities.

use crate::graph::Csr;
use crate::UNREACHABLE;
use std::collections::VecDeque;

/// A BFS tree: hop counts and parent pointers from a single source.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// `hops[v]` = hop distance from the source ([`UNREACHABLE`] if
    /// disconnected).
    pub hops: Vec<u32>,
    /// `parent[v]` = predecessor of `v` on a shortest hop path
    /// ([`UNREACHABLE`] for the source and unreachable nodes).
    pub parent: Vec<u32>,
    /// The source node.
    pub source: usize,
}

impl BfsTree {
    /// Reconstructs the path from `v` back to the source (inclusive, ending
    /// at the source). Returns `None` if `v` is unreachable.
    pub fn path_to_source(&self, v: usize) -> Option<Vec<u32>> {
        if self.hops[v] == UNREACHABLE {
            return None;
        }
        let mut path = vec![v as u32];
        let mut cur = v;
        while cur != self.source {
            cur = self.parent[cur] as usize;
            path.push(cur as u32);
        }
        Some(path)
    }

    /// Maximum finite hop count (the eccentricity of the source within its
    /// component). 0 if the source is isolated.
    pub fn max_hops(&self) -> u32 {
        self.hops
            .iter()
            .copied()
            .filter(|&h| h != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }

    /// Mean hop count over reachable nodes, excluding the source itself.
    pub fn mean_hops(&self) -> f64 {
        let mut sum = 0u64;
        let mut cnt = 0u64;
        for (v, &h) in self.hops.iter().enumerate() {
            if v != self.source && h != UNREACHABLE {
                sum += h as u64;
                cnt += 1;
            }
        }
        if cnt == 0 {
            0.0
        } else {
            sum as f64 / cnt as f64
        }
    }
}

/// Hop distances from `source` ([`UNREACHABLE`] where disconnected).
pub fn bfs_hops(g: &Csr, source: usize) -> Vec<u32> {
    bfs_tree(g, source).hops
}

/// Full BFS tree from `source`.
pub fn bfs_tree(g: &Csr, source: usize) -> BfsTree {
    assert!(source < g.n(), "source out of range");
    let mut hops = vec![UNREACHABLE; g.n()];
    let mut parent = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    hops[source] = 0;
    queue.push_back(source as u32);
    while let Some(u) = queue.pop_front() {
        let hu = hops[u as usize];
        for &v in g.neighbors(u as usize) {
            if hops[v as usize] == UNREACHABLE {
                hops[v as usize] = hu + 1;
                parent[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    BfsTree {
        hops,
        parent,
        source,
    }
}

/// Hop distance from each node to its nearest source in `sources`.
pub fn multi_source_bfs_hops(g: &Csr, sources: &[usize]) -> Vec<u32> {
    let mut hops = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    for &s in sources {
        assert!(s < g.n(), "source out of range");
        if hops[s] != 0 {
            hops[s] = 0;
            queue.push_back(s as u32);
        }
    }
    // An empty graph or source list leaves everything unreachable.
    if g.n() == 0 {
        return hops;
    }
    while let Some(u) = queue.pop_front() {
        let hu = hops[u as usize];
        for &v in g.neighbors(u as usize) {
            if hops[v as usize] == UNREACHABLE {
                hops[v as usize] = hu + 1;
                queue.push_back(v);
            }
        }
    }
    hops
}

/// For every node, the number of nodes within `k` hops (excluding itself).
///
/// Runs one bounded BFS per node: `O(n · (n + m))` worst case but pruned at
/// depth `k`, which is tiny (`k ≤ 4`) in all experiments.
pub fn khop_counts(g: &Csr, k: u32) -> Vec<u32> {
    let n = g.n();
    let mut counts = vec![0u32; n];
    // Reusable visit-stamp buffer avoids a clear per source.
    let mut stamp = vec![u32::MAX; n];
    let mut queue: VecDeque<(u32, u32)> = VecDeque::new();
    for s in 0..n {
        let mut c = 0u32;
        queue.clear();
        stamp[s] = s as u32;
        queue.push_back((s as u32, 0));
        while let Some((u, d)) = queue.pop_front() {
            if d == k {
                continue;
            }
            for &v in g.neighbors(u as usize) {
                if stamp[v as usize] != s as u32 {
                    stamp[v as usize] = s as u32;
                    c += 1;
                    queue.push_back((v, d + 1));
                }
            }
        }
        counts[s] = c;
    }
    counts
}

/// The set of nodes within `k` hops of `source`, excluding `source`.
pub fn khop_neighborhood(g: &Csr, source: usize, k: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut seen = vec![false; g.n()];
    let mut queue = VecDeque::new();
    seen[source] = true;
    queue.push_back((source as u32, 0u32));
    while let Some((u, d)) = queue.pop_front() {
        if d == k {
            continue;
        }
        for &v in g.neighbors(u as usize) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                out.push(v);
                queue.push_back((v, d + 1));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 - 1 - 2 - 3   4 - 5
    fn two_paths() -> Csr {
        Csr::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (4, 5, 1.0)])
    }

    #[test]
    fn hops_on_path() {
        let g = two_paths();
        let h = bfs_hops(&g, 0);
        assert_eq!(&h[..4], &[0, 1, 2, 3]);
        assert_eq!(h[4], UNREACHABLE);
        assert_eq!(h[5], UNREACHABLE);
    }

    #[test]
    fn tree_paths_and_stats() {
        let g = two_paths();
        let t = bfs_tree(&g, 0);
        assert_eq!(t.path_to_source(3), Some(vec![3, 2, 1, 0]));
        assert_eq!(t.path_to_source(0), Some(vec![0]));
        assert_eq!(t.path_to_source(5), None);
        assert_eq!(t.max_hops(), 3);
        assert!((t.mean_hops() - 2.0).abs() < 1e-12, "(1+2+3)/3");
    }

    #[test]
    fn parents_form_shortest_paths() {
        // Diamond: 0-1, 0-2, 1-3, 2-3 — node 3 has two shortest paths.
        let g = Csr::from_edges(4, &[(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)]);
        let t = bfs_tree(&g, 0);
        assert_eq!(t.hops, vec![0, 1, 1, 2]);
        let p3 = t.parent[3];
        assert!(p3 == 1 || p3 == 2);
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = two_paths();
        let h = multi_source_bfs_hops(&g, &[0, 3]);
        assert_eq!(&h[..4], &[0, 1, 1, 0]);
        assert_eq!(h[4], UNREACHABLE);
        // Empty source list: everything unreachable.
        let h2 = multi_source_bfs_hops(&g, &[]);
        assert!(h2.iter().all(|&x| x == UNREACHABLE));
        // Duplicate sources are harmless.
        let h3 = multi_source_bfs_hops(&g, &[0, 0, 0]);
        assert_eq!(&h3[..4], &[0, 1, 2, 3]);
    }

    #[test]
    fn khop_counts_on_path() {
        let g = two_paths();
        let k1 = khop_counts(&g, 1);
        assert_eq!(k1, vec![1, 2, 2, 1, 1, 1]);
        let k2 = khop_counts(&g, 2);
        assert_eq!(k2, vec![2, 3, 3, 2, 1, 1]);
        let k0 = khop_counts(&g, 0);
        assert_eq!(k0, vec![0; 6]);
    }

    #[test]
    fn khop_neighborhood_members() {
        let g = two_paths();
        let mut n2 = khop_neighborhood(&g, 0, 2);
        n2.sort_unstable();
        assert_eq!(n2, vec![1, 2]);
        assert!(khop_neighborhood(&g, 4, 0).is_empty());
    }

    #[test]
    fn khop_counts_match_neighborhood_sizes() {
        let g = Csr::from_edges(
            7,
            &[
                (0, 1, 1.0),
                (0, 2, 1.0),
                (1, 3, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (5, 6, 1.0),
            ],
        );
        for k in 0..4 {
            let counts = khop_counts(&g, k);
            #[allow(clippy::needless_range_loop)]
            for v in 0..7 {
                assert_eq!(
                    counts[v] as usize,
                    khop_neighborhood(&g, v, k).len(),
                    "node {v}, k {k}"
                );
            }
        }
    }

    #[test]
    fn isolated_node_bfs() {
        let g = Csr::from_edges(1, &[]);
        let t = bfs_tree(&g, 0);
        assert_eq!(t.hops, vec![0]);
        assert_eq!(t.max_hops(), 0);
        assert_eq!(t.mean_hops(), 0.0);
    }
}
