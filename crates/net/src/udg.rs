//! Unit-disk communication graphs over a deployment.
//!
//! Two radios can communicate iff they are within transmission range `R` of
//! each other — the standard connectivity model of the paper. [`Network`]
//! bundles a [`Deployment`], the range, and two CSR graphs: one over the
//! sensors only (used for connectivity statistics and local aggregation
//! structure) and one that additionally includes the sink as node
//! `n_sensors` (used by the multi-hop routing baseline).

use crate::deployment::Deployment;
use crate::graph::Csr;
use mdg_geom::{Point, SpatialGrid};

/// Builds the unit-disk graph over `points` with range `range`; edge weights
/// are Euclidean distances.
pub fn build_udg(points: &[Point], range: f64) -> Csr {
    assert!(
        range > 0.0 && range.is_finite(),
        "transmission range must be positive"
    );
    if points.is_empty() {
        return Csr::from_edges(0, &[]);
    }
    let grid = SpatialGrid::build(points, range);
    build_udg_with_grid(points, range, &grid)
}

/// [`build_udg`] over a prebuilt grid indexing exactly `points` — lets
/// callers that keep the grid around (e.g. [`Network::build`]) pay for its
/// construction once.
pub fn build_udg_with_grid(points: &[Point], range: f64, grid: &SpatialGrid) -> Csr {
    assert!(
        range > 0.0 && range.is_finite(),
        "transmission range must be positive"
    );
    debug_assert_eq!(grid.len(), points.len(), "grid must index `points`");
    let n = points.len();
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    for (i, &p) in points.iter().enumerate() {
        // The grid hands the squared distance back from its (SoA,
        // contiguous) scan; `d_sq.sqrt()` is bit-identical to
        // `p.dist(points[j])` because `dist` is defined as
        // `dist_sq().sqrt()` and squaring is sign-symmetric.
        grid.for_each_within_d(p, range, |j, d_sq| {
            if (i as u32) < j {
                edges.push((i as u32, j, d_sq.sqrt()));
            }
        });
    }
    Csr::from_edges(n, &edges)
}

/// A sensor network: deployment + transmission range + adjacency.
#[derive(Debug, Clone)]
pub struct Network {
    /// The underlying deployment.
    pub deployment: Deployment,
    /// Radio transmission range in meters.
    pub range: f64,
    /// Unit-disk graph over sensors only (node ids = sensor ids).
    pub sensor_graph: Csr,
    /// Unit-disk graph over sensors *plus the sink* as node
    /// [`Network::sink_node`].
    pub full_graph: Csr,
    /// Spatial index over the sensor positions, kept for the lifetime of
    /// the network so point-radius queries
    /// ([`Network::sensors_within_range_of`]) cost `O(local density)`
    /// instead of `O(n)` — those queries run once per stop per repair
    /// round in the online runtime.
    grid: Option<SpatialGrid>,
}

impl Network {
    /// Builds the network graphs for `deployment` with transmission range
    /// `range`.
    pub fn build(deployment: Deployment, range: f64) -> Self {
        let (sensor_graph, grid) = if deployment.sensors.is_empty() {
            (Csr::from_edges(0, &[]), None)
        } else {
            let grid = SpatialGrid::build(&deployment.sensors, range);
            let graph = build_udg_with_grid(&deployment.sensors, range, &grid);
            (graph, Some(grid))
        };
        let mut all: Vec<Point> = deployment.sensors.clone();
        all.push(deployment.sink);
        let full_graph = build_udg(&all, range);
        Network {
            deployment,
            range,
            sensor_graph,
            full_graph,
            grid,
        }
    }

    /// Number of sensors.
    pub fn n_sensors(&self) -> usize {
        self.deployment.n()
    }

    /// Node id of the sink in [`Network::full_graph`].
    pub fn sink_node(&self) -> usize {
        self.n_sensors()
    }

    /// Position of a node in the *full* graph (sensor or sink).
    pub fn position(&self, node: usize) -> Point {
        if node == self.sink_node() {
            self.deployment.sink
        } else {
            self.deployment.sensors[node]
        }
    }

    /// Sensors within `range` of an arbitrary point — i.e. the sensors that
    /// could upload in a single hop to a collector pausing at `p`. Indices
    /// are returned in ascending order.
    ///
    /// Answered from the stored [`SpatialGrid`]; the grid applies the same
    /// `dist² ≤ range²` predicate a linear scan would, so the result is
    /// identical — just `O(local density)` instead of `O(n)`.
    pub fn sensors_within_range_of(&self, p: Point) -> Vec<u32> {
        let mut near = Vec::new();
        self.sensors_within_range_of_into(p, &mut near);
        near
    }

    /// [`Network::sensors_within_range_of`] into a caller-owned buffer
    /// (cleared first). The repair loop issues this query once per stop
    /// per round; reusing the buffer keeps the steady state off the
    /// allocator.
    pub fn sensors_within_range_of_into(&self, p: Point, out: &mut Vec<u32>) {
        out.clear();
        let Some(grid) = &self.grid else {
            return;
        };
        grid.neighbors_within_into(p, self.range, out);
        out.sort_unstable();
    }

    /// Returns `true` if the sensor-only graph is connected (vacuously true
    /// for ≤ 1 sensors).
    pub fn is_connected(&self) -> bool {
        let (count, _) = crate::components::components(&self.sensor_graph);
        count <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{DeploymentConfig, SinkPlacement, Topology};
    use mdg_geom::Aabb;

    fn line_deployment() -> Deployment {
        // Sensors at x = 0, 10, 20, 35 on a line; sink at 5.
        Deployment {
            sensors: vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
                Point::new(35.0, 0.0),
            ],
            sink: Point::new(5.0, 0.0),
            field: Aabb::square(40.0),
        }
    }

    #[test]
    fn udg_edges_respect_range() {
        let d = line_deployment();
        let g = build_udg(&d.sensors, 10.0);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2), "20 m apart > 10 m range");
        assert!(!g.has_edge(2, 3), "15 m apart > 10 m range");
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn udg_matches_brute_force_on_random_field() {
        let d = DeploymentConfig::uniform(150, 200.0).generate(9);
        let r = 30.0;
        let g = build_udg(&d.sensors, r);
        let mut brute = 0usize;
        for i in 0..d.n() {
            for j in (i + 1)..d.n() {
                let within = d.sensors[i].dist(d.sensors[j]) <= r;
                assert_eq!(g.has_edge(i, j), within, "pair ({i},{j})");
                brute += within as usize;
            }
        }
        assert_eq!(g.m(), brute);
    }

    #[test]
    fn udg_weights_are_distances() {
        let d = line_deployment();
        let g = build_udg(&d.sensors, 10.0);
        for (u, v, w) in g.edges() {
            let expect = d.sensors[u as usize].dist(d.sensors[v as usize]);
            assert!((w - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn network_full_graph_includes_sink() {
        let net = Network::build(line_deployment(), 10.0);
        assert_eq!(net.n_sensors(), 4);
        assert_eq!(net.sink_node(), 4);
        // Sink at x=5 is within 10 m of sensors at 0 and 10.
        assert!(net.full_graph.has_edge(4, 0));
        assert!(net.full_graph.has_edge(4, 1));
        assert!(!net.full_graph.has_edge(4, 2));
        assert_eq!(net.position(4), Point::new(5.0, 0.0));
        assert_eq!(net.position(0), Point::new(0.0, 0.0));
    }

    #[test]
    fn sensors_within_range_matches_linear_scan() {
        // The grid-backed query must reproduce the brute-force predicate
        // (dist² ≤ range²) exactly, in ascending index order.
        let d = DeploymentConfig::uniform(200, 250.0).generate(17);
        let net = Network::build(d, 30.0);
        let r_sq = net.range * net.range;
        for probe in 0..40usize {
            let p = Point::new((probe * 7 % 251) as f64, (probe * 13 % 241) as f64);
            let brute: Vec<u32> = net
                .deployment
                .sensors
                .iter()
                .enumerate()
                .filter(|(_, s)| s.dist_sq(p) <= r_sq)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(net.sensors_within_range_of(p), brute, "probe {probe}");
        }
    }

    #[test]
    fn sensors_within_range_of_point() {
        let net = Network::build(line_deployment(), 10.0);
        let mut near = net.sensors_within_range_of(Point::new(15.0, 0.0));
        near.sort_unstable();
        assert_eq!(near, vec![1, 2]);
        assert!(net
            .sensors_within_range_of(Point::new(100.0, 100.0))
            .is_empty());
    }

    #[test]
    fn connectivity_detection() {
        let connected = Network::build(line_deployment(), 15.0);
        assert!(connected.is_connected());
        let disconnected = Network::build(line_deployment(), 10.0);
        assert!(!disconnected.is_connected(), "sensor 3 is isolated at R=10");
    }

    #[test]
    fn corridors_are_disconnected_at_small_range() {
        let cfg = DeploymentConfig {
            field_side: 300.0,
            sink: SinkPlacement::Center,
            topology: Topology::Corridors {
                bands: 3,
                per_band: 40,
                band_height: 15.0,
            },
        };
        let net = Network::build(cfg.generate(3), 30.0);
        let (count, _) = crate::components::components(&net.sensor_graph);
        assert!(
            count >= 3,
            "bands 85 m apart cannot link at R=30, got {count} components"
        );
    }

    #[test]
    fn empty_network() {
        let d = Deployment {
            sensors: vec![],
            sink: Point::ORIGIN,
            field: Aabb::square(10.0),
        };
        let net = Network::build(d, 5.0);
        assert_eq!(net.n_sensors(), 0);
        assert!(net.is_connected());
        assert_eq!(net.full_graph.n(), 1, "just the sink");
    }
}
