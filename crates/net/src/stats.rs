//! Topology statistics: degree structure and connectivity probability.
//!
//! The evaluation interprets its sweeps through density arguments
//! ("sensors become more densely scattered…"), so the harness reports the
//! structural quantities behind them.

use crate::deployment::DeploymentConfig;
use crate::graph::Csr;
use crate::udg::Network;
use serde::{Deserialize, Serialize};

/// Degree and component structure of one communication graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyStats {
    /// Number of nodes.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Mean node degree.
    pub mean_degree: f64,
    /// Smallest node degree.
    pub min_degree: usize,
    /// Largest node degree.
    pub max_degree: usize,
    /// Nodes with no neighbors at all.
    pub isolated: usize,
    /// Number of connected components.
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
}

impl TopologyStats {
    /// Computes the statistics of a graph.
    pub fn of(g: &Csr) -> TopologyStats {
        let n = g.n();
        let degrees: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
        let sizes = crate::components::component_sizes(g);
        TopologyStats {
            n,
            m: g.m(),
            mean_degree: g.avg_degree(),
            min_degree: degrees.iter().copied().min().unwrap_or(0),
            max_degree: degrees.iter().copied().max().unwrap_or(0),
            isolated: degrees.iter().filter(|&&d| d == 0).count(),
            components: sizes.len(),
            largest_component: sizes.first().copied().unwrap_or(0),
        }
    }

    /// Statistics of a network's sensor-only graph.
    pub fn of_network(net: &Network) -> TopologyStats {
        TopologyStats::of(&net.sensor_graph)
    }
}

/// Histogram of node degrees: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &Csr) -> Vec<usize> {
    let max = (0..g.n()).map(|v| g.degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for v in 0..g.n() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Monte-Carlo estimate of the probability that a deployment drawn from
/// `cfg` is connected at transmission range `range`, over `trials` seeded
/// topologies starting at `base_seed`. Deterministic for fixed inputs.
pub fn connectivity_probability(
    cfg: &DeploymentConfig,
    range: f64,
    trials: usize,
    base_seed: u64,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let connected = (0..trials)
        .filter(|&i| {
            Network::build(cfg.generate(base_seed.wrapping_add(i as u64)), range).is_connected()
        })
        .count();
    connected as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 - 1 - 2,  3 isolated.
    fn sample() -> Csr {
        Csr::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0)])
    }

    #[test]
    fn stats_of_sample() {
        let s = TopologyStats::of(&sample());
        assert_eq!(s.n, 4);
        assert_eq!(s.m, 2);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.isolated, 1);
        assert_eq!(s.components, 2);
        assert_eq!(s.largest_component, 3);
        assert!((s.mean_degree - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_n() {
        let h = degree_histogram(&sample());
        assert_eq!(h, vec![1, 2, 1]);
        assert_eq!(h.iter().sum::<usize>(), 4);
        // Empty graph.
        let empty = Csr::from_edges(0, &[]);
        assert_eq!(degree_histogram(&empty), vec![0]);
    }

    #[test]
    fn connectivity_probability_monotone_in_range() {
        let cfg = DeploymentConfig::uniform(60, 200.0);
        let p_small = connectivity_probability(&cfg, 15.0, 20, 7);
        let p_big = connectivity_probability(&cfg, 80.0, 20, 7);
        assert!(p_small <= p_big, "{p_small} vs {p_big}");
        assert!((0.0..=1.0).contains(&p_small));
        assert!(
            p_big > 0.9,
            "a 80 m range on 60/200 m must almost surely connect"
        );
    }

    #[test]
    fn connectivity_probability_is_deterministic() {
        let cfg = DeploymentConfig::uniform(40, 200.0);
        let a = connectivity_probability(&cfg, 35.0, 15, 3);
        let b = connectivity_probability(&cfg, 35.0, 15, 3);
        assert_eq!(a, b);
    }
}
