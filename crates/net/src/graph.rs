//! Compressed-sparse-row (CSR) adjacency for undirected weighted graphs.
//!
//! CSR keeps each node's neighbor list contiguous, which is what the BFS /
//! Dijkstra inner loops in the experiment sweeps want: one cache line per
//! neighborhood instead of a pointer chase per edge (this is why the graph
//! library is hand-rolled rather than pulled from a general-purpose crate).

/// An undirected weighted graph in CSR form. Node ids are `0..n`.
///
/// Construction deduplicates nothing: callers are expected to provide each
/// undirected edge once; both directions are materialized internally.
#[derive(Debug, Clone)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
    n_edges: usize,
}

impl Csr {
    /// Builds a CSR graph over `n` nodes from an undirected edge list
    /// `(u, v, weight)`. Self-loops are rejected.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n` or `u == v`.
    pub fn from_edges(n: usize, edges: &[(u32, u32, f64)]) -> Self {
        let mut degree = vec![0u32; n + 1];
        for &(u, v, _) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            assert!(u != v, "self-loops are not allowed");
            degree[u as usize + 1] += 1;
            degree[v as usize + 1] += 1;
        }
        for i in 0..n {
            degree[i + 1] += degree[i];
        }
        let offsets = degree.clone();
        let mut cursor = degree;
        let mut targets = vec![0u32; edges.len() * 2];
        let mut weights = vec![0.0f64; edges.len() * 2];
        for &(u, v, w) in edges {
            let cu = cursor[u as usize] as usize;
            targets[cu] = v;
            weights[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            targets[cv] = u;
            weights[cv] = w;
            cursor[v as usize] += 1;
        }
        Csr {
            offsets,
            targets,
            weights,
            n_edges: edges.len(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.n_edges
    }

    /// Neighbors of `u`.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Neighbors of `u` with edge weights.
    #[inline]
    pub fn neighbors_weighted(&self, u: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Average node degree (`2m / n`), 0 for an empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n() as f64
        }
    }

    /// Returns `true` if `u` and `v` are adjacent (linear scan of the
    /// shorter neighborhood).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).contains(&(b as u32))
    }

    /// Iterates all undirected edges `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        (0..self.n()).flat_map(move |u| {
            self.neighbors_weighted(u)
                .filter(move |&(v, _)| (u as u32) < v)
                .map(move |(v, w)| (u as u32, v, w))
        })
    }

    /// Builds the induced subgraph on `keep` (a set of node ids). Returns
    /// the subgraph and the mapping `new_id -> old_id`.
    pub fn induced_subgraph(&self, keep: &[usize]) -> (Csr, Vec<usize>) {
        let mut old_to_new = vec![u32::MAX; self.n()];
        for (new, &old) in keep.iter().enumerate() {
            old_to_new[old] = new as u32;
        }
        let mut edges = Vec::new();
        for &old_u in keep {
            let new_u = old_to_new[old_u];
            for (v, w) in self.neighbors_weighted(old_u) {
                let new_v = old_to_new[v as usize];
                if new_v != u32::MAX && new_u < new_v {
                    edges.push((new_u, new_v, w));
                }
            }
        }
        (Csr::from_edges(keep.len(), &edges), keep.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 - 1 - 2
    ///     |
    ///     3       4 (isolated)
    fn sample() -> Csr {
        Csr::from_edges(5, &[(0, 1, 1.0), (1, 2, 2.0), (1, 3, 3.0)])
    }

    #[test]
    fn counts_and_degrees() {
        let g = sample();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(4), 0);
        assert!((g.avg_degree() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn neighbors_bidirectional() {
        let g = sample();
        assert_eq!(g.neighbors(0), &[1]);
        let mut n1: Vec<u32> = g.neighbors(1).to_vec();
        n1.sort_unstable();
        assert_eq!(n1, vec![0, 2, 3]);
        assert!(g.neighbors(4).is_empty());
    }

    #[test]
    fn weighted_neighbors() {
        let g = sample();
        let w: Vec<(u32, f64)> = g.neighbors_weighted(2).collect();
        assert_eq!(w, vec![(1, 2.0)]);
    }

    #[test]
    fn has_edge_symmetric() {
        let g = sample();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(4, 0));
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = sample();
        let mut edges: Vec<(u32, u32, f64)> = g.edges().collect();
        edges.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(edges, vec![(0, 1, 1.0), (1, 2, 2.0), (1, 3, 3.0)]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = sample();
        let (sub, map) = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 1, "only edge 1-2 survives");
        assert_eq!(map, vec![1, 2, 4]);
        assert!(sub.has_edge(0, 1)); // new ids of old 1 and 2
        assert_eq!(sub.degree(2), 0); // old node 4
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        Csr::from_edges(2, &[(1, 1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        Csr::from_edges(2, &[(0, 2, 1.0)]);
    }
}
