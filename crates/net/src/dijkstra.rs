//! Dijkstra shortest paths over weighted CSR graphs.
//!
//! The multi-hop baseline can route along minimum-*distance* paths (edge
//! weights = Euclidean distances, matching a `d^α` energy model) instead of
//! minimum-hop paths; Dijkstra provides that alternative routing tree.

use crate::graph::Csr;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a single-source Dijkstra run.
#[derive(Debug, Clone)]
pub struct DijkstraResult {
    /// `dist[v]` = weighted distance from the source (`f64::INFINITY` if
    /// unreachable).
    pub dist: Vec<f64>,
    /// `parent[v]` = predecessor on a shortest path (`u32::MAX` for the
    /// source and unreachable nodes).
    pub parent: Vec<u32>,
    /// The source node.
    pub source: usize,
}

impl DijkstraResult {
    /// Reconstructs the path from `v` back to the source (inclusive).
    /// Returns `None` if `v` is unreachable.
    pub fn path_to_source(&self, v: usize) -> Option<Vec<u32>> {
        if !self.dist[v].is_finite() {
            return None;
        }
        let mut path = vec![v as u32];
        let mut cur = v;
        while cur != self.source {
            cur = self.parent[cur] as usize;
            path.push(cur as u32);
        }
        Some(path)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest paths with non-negative edge weights.
///
/// # Panics
/// Panics if `source` is out of range or a negative edge weight is
/// encountered (debug builds only for the latter).
pub fn dijkstra(g: &Csr, source: usize) -> DijkstraResult {
    assert!(source < g.n(), "source out of range");
    let mut dist = vec![f64::INFINITY; g.n()];
    let mut parent = vec![u32::MAX; g.n()];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source as u32,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u as usize] {
            continue; // Stale entry.
        }
        for (v, w) in g.neighbors_weighted(u as usize) {
            debug_assert!(w >= 0.0, "negative edge weight");
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                parent[v as usize] = u;
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    DijkstraResult {
        dist,
        parent,
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::bfs_hops;

    /// Weighted triangle plus a pendant:
    ///   0 —1.0— 1
    ///   0 —2.5— 2
    ///   1 —1.0— 2
    ///   2 —3.0— 3
    fn weighted() -> Csr {
        Csr::from_edges(5, &[(0, 1, 1.0), (0, 2, 2.5), (1, 2, 1.0), (2, 3, 3.0)])
    }

    #[test]
    fn shortest_distances() {
        let r = dijkstra(&weighted(), 0);
        assert_eq!(r.dist[0], 0.0);
        assert_eq!(r.dist[1], 1.0);
        assert_eq!(r.dist[2], 2.0, "via node 1, not the direct 2.5 edge");
        assert_eq!(r.dist[3], 5.0);
        assert!(r.dist[4].is_infinite());
    }

    #[test]
    fn path_reconstruction() {
        let r = dijkstra(&weighted(), 0);
        assert_eq!(r.path_to_source(3), Some(vec![3, 2, 1, 0]));
        assert_eq!(r.path_to_source(0), Some(vec![0]));
        assert_eq!(r.path_to_source(4), None);
    }

    #[test]
    fn unit_weights_match_bfs() {
        let g = Csr::from_edges(
            8,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (0, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (6, 7, 1.0),
            ],
        );
        let d = dijkstra(&g, 0);
        let h = bfs_hops(&g, 0);
        #[allow(clippy::needless_range_loop)]
        for v in 0..8 {
            if h[v] == crate::UNREACHABLE {
                assert!(d.dist[v].is_infinite());
            } else {
                assert_eq!(d.dist[v] as u32, h[v], "node {v}");
            }
        }
    }

    #[test]
    fn dijkstra_from_each_source_is_symmetric() {
        let g = weighted();
        #[allow(clippy::needless_range_loop)]
        for u in 0..g.n() {
            let du = dijkstra(&g, u);
            for v in 0..g.n() {
                let dv = dijkstra(&g, v);
                let a = du.dist[v];
                let b = dv.dist[u];
                if a.is_finite() || b.is_finite() {
                    assert!((a - b).abs() < 1e-12, "d({u},{v}) symmetric");
                }
            }
        }
    }
}
