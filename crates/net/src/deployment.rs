//! Seeded sensor deployment generators.
//!
//! Each generator takes a [`DeploymentConfig`] and a 64-bit seed and returns
//! a [`Deployment`] — sensor coordinates plus the static data sink. The
//! paper's evaluation uses uniform random placements over square fields with
//! the sink at the center; the other topologies exercise the planner on
//! structured and *disconnected* networks (one of the paper's motivating
//! advantages of mobile collection: it works where multi-hop routing
//! cannot).

use mdg_geom::{Aabb, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A static sensor deployment: positions plus the data sink.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    /// Sensor positions; index `i` is sensor `i` throughout the workspace.
    pub sensors: Vec<Point>,
    /// The static data sink (tour start/end, destination of multi-hop
    /// routing).
    pub sink: Point,
    /// The deployment field.
    pub field: Aabb,
}

impl Deployment {
    /// Number of sensors.
    pub fn n(&self) -> usize {
        self.sensors.len()
    }

    /// Sensor density in sensors per square meter (0 for a degenerate
    /// field).
    pub fn density(&self) -> f64 {
        let a = self.field.area();
        if a <= 0.0 {
            0.0
        } else {
            self.n() as f64 / a
        }
    }
}

/// Where the static data sink sits relative to the field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SinkPlacement {
    /// Field center — the paper's default.
    Center,
    /// The field's minimum corner (origin for `Aabb::square`).
    Corner,
    /// An explicit position (may be outside the field; the paper allows
    /// sinks "either inside or outside the sensing field").
    At(Point),
}

impl SinkPlacement {
    fn resolve(&self, field: &Aabb) -> Point {
        match *self {
            SinkPlacement::Center => field.center(),
            SinkPlacement::Corner => field.min,
            SinkPlacement::At(p) => p,
        }
    }
}

/// Sensor placement pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// `n` sensors i.i.d. uniform over the field — the paper's evaluation
    /// topology.
    UniformRandom { n: usize },
    /// `nx × ny` grid with per-sensor uniform jitter of up to `jitter`
    /// meters in each axis (clamped to the field).
    GridJitter { nx: usize, ny: usize, jitter: f64 },
    /// `clusters` Gaussian clusters of `per_cluster` sensors each, with
    /// standard deviation `sigma`; cluster centers uniform over the field.
    /// Positions are clamped to the field.
    GaussianClusters {
        clusters: usize,
        per_cluster: usize,
        sigma: f64,
    },
    /// `bands` horizontal strips of sensors separated by empty gaps wider
    /// than any practical transmission range — a deliberately
    /// *disconnected* network.
    Corridors {
        bands: usize,
        per_band: usize,
        band_height: f64,
    },
}

impl Topology {
    /// Total number of sensors this topology will generate.
    pub fn sensor_count(&self) -> usize {
        match *self {
            Topology::UniformRandom { n } => n,
            Topology::GridJitter { nx, ny, .. } => nx * ny,
            Topology::GaussianClusters {
                clusters,
                per_cluster,
                ..
            } => clusters * per_cluster,
            Topology::Corridors {
                bands, per_band, ..
            } => bands * per_band,
        }
    }
}

/// Full deployment specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// Side of the square field in meters.
    pub field_side: f64,
    /// Sink placement.
    pub sink: SinkPlacement,
    /// Sensor placement pattern.
    pub topology: Topology,
}

impl DeploymentConfig {
    /// Uniform random deployment over an `side × side` field with the sink
    /// at the center — the paper's standard setup.
    ///
    /// ```
    /// use mdg_net::DeploymentConfig;
    ///
    /// let dep = DeploymentConfig::uniform(200, 200.0).generate(42);
    /// assert_eq!(dep.n(), 200);
    /// assert_eq!(dep.sink, mdg_geom::Point::new(100.0, 100.0));
    /// // Same seed, same deployment — the whole evaluation relies on it.
    /// assert_eq!(dep.sensors, DeploymentConfig::uniform(200, 200.0).generate(42).sensors);
    /// ```
    pub fn uniform(n: usize, side: f64) -> Self {
        DeploymentConfig {
            field_side: side,
            sink: SinkPlacement::Center,
            topology: Topology::UniformRandom { n },
        }
    }

    /// Generates the deployment for `seed`. Deterministic: equal
    /// `(config, seed)` pairs produce identical deployments.
    pub fn generate(&self, seed: u64) -> Deployment {
        assert!(self.field_side > 0.0, "field side must be positive");
        let field = Aabb::square(self.field_side);
        let mut rng = StdRng::seed_from_u64(seed);
        let sensors = match self.topology {
            Topology::UniformRandom { n } => uniform_random(&mut rng, &field, n),
            Topology::GridJitter { nx, ny, jitter } => {
                grid_jitter(&mut rng, &field, nx, ny, jitter)
            }
            Topology::GaussianClusters {
                clusters,
                per_cluster,
                sigma,
            } => gaussian_clusters(&mut rng, &field, clusters, per_cluster, sigma),
            Topology::Corridors {
                bands,
                per_band,
                band_height,
            } => corridors(&mut rng, &field, bands, per_band, band_height),
        };
        Deployment {
            sensors,
            sink: self.sink.resolve(&field),
            field,
        }
    }
}

fn uniform_random(rng: &mut StdRng, field: &Aabb, n: usize) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(field.min.x..=field.max.x),
                rng.gen_range(field.min.y..=field.max.y),
            )
        })
        .collect()
}

fn grid_jitter(rng: &mut StdRng, field: &Aabb, nx: usize, ny: usize, jitter: f64) -> Vec<Point> {
    assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
    assert!(jitter >= 0.0, "jitter must be non-negative");
    let dx = field.width() / nx as f64;
    let dy = field.height() / ny as f64;
    let mut out = Vec::with_capacity(nx * ny);
    for gy in 0..ny {
        for gx in 0..nx {
            let base = Point::new(
                field.min.x + (gx as f64 + 0.5) * dx,
                field.min.y + (gy as f64 + 0.5) * dy,
            );
            let jittered = if jitter > 0.0 {
                base + Point::new(
                    rng.gen_range(-jitter..=jitter),
                    rng.gen_range(-jitter..=jitter),
                )
            } else {
                base
            };
            out.push(field.clamp(jittered));
        }
    }
    out
}

/// Standard-normal sample via Box–Muller (avoids a `rand_distr` dependency).
fn std_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn gaussian_clusters(
    rng: &mut StdRng,
    field: &Aabb,
    clusters: usize,
    per_cluster: usize,
    sigma: f64,
) -> Vec<Point> {
    assert!(sigma >= 0.0, "sigma must be non-negative");
    let mut out = Vec::with_capacity(clusters * per_cluster);
    for _ in 0..clusters {
        let center = Point::new(
            rng.gen_range(field.min.x..=field.max.x),
            rng.gen_range(field.min.y..=field.max.y),
        );
        for _ in 0..per_cluster {
            let p = center + Point::new(std_normal(rng) * sigma, std_normal(rng) * sigma);
            out.push(field.clamp(p));
        }
    }
    out
}

fn corridors(
    rng: &mut StdRng,
    field: &Aabb,
    bands: usize,
    per_band: usize,
    band_height: f64,
) -> Vec<Point> {
    assert!(bands > 0, "need at least one band");
    assert!(band_height > 0.0, "band height must be positive");
    let slot = field.height() / bands as f64;
    let h = band_height.min(slot);
    let mut out = Vec::with_capacity(bands * per_band);
    for b in 0..bands {
        let y0 = field.min.y + b as f64 * slot;
        for _ in 0..per_band {
            out.push(Point::new(
                rng.gen_range(field.min.x..=field.max.x),
                rng.gen_range(y0..=(y0 + h)),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_and_in_field() {
        let cfg = DeploymentConfig::uniform(200, 200.0);
        let a = cfg.generate(42);
        let b = cfg.generate(42);
        assert_eq!(a.sensors.len(), 200);
        assert_eq!(a.sensors, b.sensors, "same seed ⇒ same deployment");
        for p in &a.sensors {
            assert!(a.field.contains(*p));
        }
        assert_eq!(a.sink, Point::new(100.0, 100.0));
        let c = cfg.generate(43);
        assert_ne!(
            a.sensors, c.sensors,
            "different seed ⇒ different deployment"
        );
    }

    #[test]
    fn density() {
        let d = DeploymentConfig::uniform(400, 200.0).generate(1);
        assert!((d.density() - 400.0 / 40_000.0).abs() < 1e-12);
    }

    #[test]
    fn grid_jitter_counts_and_bounds() {
        let cfg = DeploymentConfig {
            field_side: 100.0,
            sink: SinkPlacement::Corner,
            topology: Topology::GridJitter {
                nx: 5,
                ny: 4,
                jitter: 3.0,
            },
        };
        let d = cfg.generate(7);
        assert_eq!(d.n(), 20);
        assert_eq!(d.sink, Point::ORIGIN);
        for p in &d.sensors {
            assert!(d.field.contains(*p));
        }
    }

    #[test]
    fn grid_without_jitter_is_regular() {
        let cfg = DeploymentConfig {
            field_side: 100.0,
            sink: SinkPlacement::Center,
            topology: Topology::GridJitter {
                nx: 2,
                ny: 2,
                jitter: 0.0,
            },
        };
        let d = cfg.generate(0);
        assert_eq!(d.sensors[0], Point::new(25.0, 25.0));
        assert_eq!(d.sensors[3], Point::new(75.0, 75.0));
    }

    #[test]
    fn clusters_stay_in_field() {
        let cfg = DeploymentConfig {
            field_side: 300.0,
            sink: SinkPlacement::Center,
            topology: Topology::GaussianClusters {
                clusters: 4,
                per_cluster: 25,
                sigma: 15.0,
            },
        };
        let d = cfg.generate(11);
        assert_eq!(d.n(), 100);
        for p in &d.sensors {
            assert!(d.field.contains(*p));
        }
    }

    #[test]
    fn corridors_form_separated_bands() {
        let cfg = DeploymentConfig {
            field_side: 300.0,
            sink: SinkPlacement::Center,
            topology: Topology::Corridors {
                bands: 3,
                per_band: 30,
                band_height: 20.0,
            },
        };
        let d = cfg.generate(5);
        assert_eq!(d.n(), 90);
        // Every sensor lies inside one of the three 20 m-tall bands at the
        // bottoms of 100 m slots; gaps of 80 m separate the bands.
        for p in &d.sensors {
            let slot = (p.y / 100.0).floor();
            let offset = p.y - slot * 100.0;
            assert!(offset <= 20.0 + 1e-9, "sensor at y={} outside band", p.y);
        }
    }

    #[test]
    fn explicit_sink_outside_field() {
        let cfg = DeploymentConfig {
            field_side: 100.0,
            sink: SinkPlacement::At(Point::new(-50.0, -50.0)),
            topology: Topology::UniformRandom { n: 10 },
        };
        let d = cfg.generate(1);
        assert_eq!(d.sink, Point::new(-50.0, -50.0));
        assert!(!d.field.contains(d.sink));
    }

    #[test]
    fn sensor_count_matches_topology() {
        assert_eq!(Topology::UniformRandom { n: 7 }.sensor_count(), 7);
        assert_eq!(
            Topology::GridJitter {
                nx: 3,
                ny: 4,
                jitter: 0.0
            }
            .sensor_count(),
            12
        );
        assert_eq!(
            Topology::GaussianClusters {
                clusters: 2,
                per_cluster: 5,
                sigma: 1.0
            }
            .sensor_count(),
            10
        );
        assert_eq!(
            Topology::Corridors {
                bands: 2,
                per_band: 6,
                band_height: 5.0
            }
            .sensor_count(),
            12
        );
    }

    #[test]
    #[should_panic(expected = "field side")]
    fn zero_field_panics() {
        DeploymentConfig::uniform(10, 0.0).generate(0);
    }
}
