//! # mobile-collectors
//!
//! A production-quality Rust reproduction of **"Data gathering in wireless
//! sensor networks with mobile collectors"** (Ma & Yang, IEEE IPDPS 2008):
//! plan the tour of a mobile collector (*M-collector*) that starts at the
//! static data sink, pauses at a minimal set of **polling points**, gathers
//! every sensor's data via **single-hop** uploads, and returns to the sink
//! — plus the multi-collector extension for deadline-bounded gathering,
//! every baseline the paper compares against, and a discrete-event
//! simulator for energy/latency/lifetime studies.
//!
//! ## Quickstart
//!
//! ```rust
//! use mobile_collectors::net::{DeploymentConfig, Network};
//! use mobile_collectors::core::ShdgPlanner;
//!
//! // 200 sensors on a 200 m × 200 m field, sink at the center, R = 30 m.
//! let deployment = DeploymentConfig::uniform(200, 200.0).generate(42);
//! let network = Network::build(deployment, 30.0);
//!
//! let plan = ShdgPlanner::new().plan(&network).unwrap();
//! println!(
//!     "{} polling points, tour {:.0} m",
//!     plan.n_polling_points(),
//!     plan.tour_length
//! );
//! assert!(plan.validate(&network.deployment.sensors, network.range).is_ok());
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`par`] | `mdg-par` | deterministic thread-pool parallelism (`MDG_THREADS`) |
//! | [`obs`] | `mdg-obs` | observability: phase spans, counters, histograms, profile exporters |
//! | [`geom`] | `mdg-geom` | points, hulls, spatial grids, distance matrices |
//! | [`net`] | `mdg-net` | deployments, unit-disk graphs, BFS/Dijkstra/components |
//! | [`energy`] | `mdg-energy` | first-order radio model, batteries, ledgers |
//! | [`tour`] | `mdg-tour` | TSP construction/improvement/exact/splitting |
//! | [`cover`] | `mdg-cover` | polling-point coverage and set-cover solvers |
//! | [`core`] | `mdg-core` | **the SHDG planner**, exact solver, fleet planner |
//! | [`sim`] | `mdg-sim` | discrete-event simulator, lifetime studies |
//! | [`baselines`] | `mdg-baselines` | visit-all, multi-hop routing, CME, direct |
//! | [`runtime`] | `mdg-runtime` | online re-planning: fault injection, plan repair, trace bundles + counterfactual replay |
//! | [`serve`] | `mdg-serve` | planning-as-a-service daemon: warm sessions, incremental replans over TCP |

pub mod render;

pub use mdg_baselines as baselines;
pub use mdg_core as core;
pub use mdg_cover as cover;
pub use mdg_energy as energy;
pub use mdg_geom as geom;
pub use mdg_net as net;
pub use mdg_obs as obs;
pub use mdg_par as par;
pub use mdg_runtime as runtime;
pub use mdg_serve as serve;
pub use mdg_sim as sim;
pub use mdg_tour as tour;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use mdg_baselines::{plan_cme, visit_all_plan, MultihopMetrics};
    pub use mdg_core::{
        exact_plan, plan_fleet, plan_fleet_for_deadline, GatheringPlan, PlanMetrics, PlannerConfig,
        ShdgPlanner,
    };
    pub use mdg_energy::RadioModel;
    pub use mdg_geom::Point;
    pub use mdg_net::{Deployment, DeploymentConfig, Network, SinkPlacement, Topology};
    pub use mdg_runtime::{
        parse_bundle, FaultConfig, GatheringRuntime, PolicyOverrides, RepairPolicy, ReplayEngine,
        ReplayManifest, RuntimeConfig, SweepSpec, TopologyManifest, TraceHeader, TraceWriter,
    };
    pub use mdg_sim::{
        scenario_from_plan, simulate_lifetime, MobileGatheringSim, MultihopRoutingSim, SimConfig,
    };
}
