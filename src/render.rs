//! SVG rendering of deployments, plans and fleet plans.
//!
//! The paper's example figures are *pictures*: a sensor field, the chosen
//! polling points, and the collector tour drawn over it. This module
//! regenerates such figures as standalone SVG files (no external
//! dependencies — the SVG is assembled by string building).

use mdg_core::{FleetPlan, GatheringPlan};
use mdg_geom::{Aabb, Point};
use mdg_net::Network;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Output canvas width in pixels (height follows the field's aspect).
    pub width_px: f64,
    /// Margin around the field in pixels.
    pub margin_px: f64,
    /// Draw the unit-disk communication edges.
    pub draw_edges: bool,
    /// Draw sensor → polling-point assignment links.
    pub draw_assignments: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width_px: 640.0,
            margin_px: 24.0,
            draw_edges: false,
            draw_assignments: true,
        }
    }
}

/// Sub-tour stroke colors for fleet rendering (cycled).
const FLEET_COLORS: [&str; 6] = [
    "#c0392b", "#2980b9", "#27ae60", "#8e44ad", "#d35400", "#16a085",
];

struct Canvas {
    svg: String,
    scale: f64,
    offset: Point,
    height_px: f64,
}

impl Canvas {
    fn new(field: &Aabb, opts: &RenderOptions) -> Canvas {
        let usable = opts.width_px - 2.0 * opts.margin_px;
        let scale = usable / field.width().max(1e-9);
        let height_px = field.height() * scale + 2.0 * opts.margin_px;
        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"#,
            opts.width_px, height_px, opts.width_px, height_px
        );
        let _ = writeln!(
            svg,
            r##"<rect width="100%" height="100%" fill="#ffffff"/>"##
        );
        Canvas {
            svg,
            scale,
            offset: field.min - Point::new(opts.margin_px / scale, opts.margin_px / scale),
            height_px,
        }
    }

    /// Maps field meters to pixel coordinates (y flipped: SVG grows down).
    fn px(&self, p: Point) -> (f64, f64) {
        let x = (p.x - self.offset.x) * self.scale;
        let y = self.height_px - (p.y - self.offset.y) * self.scale;
        (x, y)
    }

    fn line(&mut self, a: Point, b: Point, stroke: &str, width: f64, dash: Option<&str>) {
        let (x1, y1) = self.px(a);
        let (x2, y2) = self.px(b);
        let dash_attr = dash.map_or(String::new(), |d| format!(r#" stroke-dasharray="{d}""#));
        let _ = writeln!(
            self.svg,
            r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{stroke}" stroke-width="{width}"{dash_attr}/>"#
        );
    }

    fn circle(&mut self, p: Point, r: f64, fill: &str, stroke: &str) {
        let (cx, cy) = self.px(p);
        let _ = writeln!(
            self.svg,
            r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="{r}" fill="{fill}" stroke="{stroke}" stroke-width="1"/>"#
        );
    }

    fn rect_marker(&mut self, p: Point, half: f64, fill: &str) {
        let (cx, cy) = self.px(p);
        let _ = writeln!(
            self.svg,
            r##"<rect x="{:.1}" y="{:.1}" width="{}" height="{}" fill="{fill}" stroke="#000" stroke-width="1"/>"##,
            cx - half,
            cy - half,
            2.0 * half,
            2.0 * half
        );
    }

    fn text(&mut self, p: Point, dy: f64, content: &str) {
        let (x, y) = self.px(p);
        let _ = writeln!(
            self.svg,
            r##"<text x="{x:.1}" y="{:.1}" font-size="10" font-family="sans-serif" fill="#333">{content}</text>"##,
            y + dy
        );
    }

    fn finish(mut self) -> String {
        let _ = writeln!(self.svg, "</svg>");
        self.svg
    }
}

fn draw_network(canvas: &mut Canvas, net: &Network, opts: &RenderOptions) {
    if opts.draw_edges {
        for (u, v, _) in net.sensor_graph.edges() {
            canvas.line(
                net.deployment.sensors[u as usize],
                net.deployment.sensors[v as usize],
                "#dddddd",
                0.6,
                None,
            );
        }
    }
    for &s in &net.deployment.sensors {
        canvas.circle(s, 2.5, "#7f8c8d", "#555555");
    }
    canvas.rect_marker(net.deployment.sink, 5.0, "#f1c40f");
    canvas.text(net.deployment.sink, -8.0, "sink");
}

/// Renders a single-collector plan: sensors, assignment links, polling
/// points and the closed tour.
pub fn render_plan_svg(net: &Network, plan: &GatheringPlan, opts: &RenderOptions) -> String {
    let mut canvas = Canvas::new(&net.deployment.field, opts);
    draw_network(&mut canvas, net, opts);
    if opts.draw_assignments {
        for (s, &k) in plan.assignment.iter().enumerate() {
            canvas.line(
                net.deployment.sensors[s],
                plan.polling_points[k].pos,
                "#bdc3c7",
                0.7,
                Some("3,3"),
            );
        }
    }
    // The closed tour.
    let tour = plan.tour_positions();
    for i in 0..tour.len() {
        canvas.line(tour[i], tour[(i + 1) % tour.len()], "#c0392b", 2.0, None);
    }
    for pp in &plan.polling_points {
        canvas.circle(pp.pos, 4.5, "#e74c3c", "#922b21");
    }
    canvas.finish()
}

/// Renders a fleet plan: one tour color per collector.
pub fn render_fleet_svg(
    net: &Network,
    plan: &GatheringPlan,
    fleet: &FleetPlan,
    opts: &RenderOptions,
) -> String {
    let mut canvas = Canvas::new(&net.deployment.field, opts);
    draw_network(&mut canvas, net, opts);
    for (ci, collector) in fleet.collectors.iter().enumerate() {
        let color = FLEET_COLORS[ci % FLEET_COLORS.len()];
        let mut tour = vec![plan.sink];
        tour.extend(
            collector
                .polling_points
                .iter()
                .map(|&i| plan.polling_points[i].pos),
        );
        for i in 0..tour.len() {
            canvas.line(tour[i], tour[(i + 1) % tour.len()], color, 2.0, None);
        }
        for &i in &collector.polling_points {
            canvas.circle(plan.polling_points[i].pos, 4.0, color, "#333333");
        }
    }
    canvas.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_core::{fleet::plan_fleet, ShdgPlanner};
    use mdg_net::DeploymentConfig;

    fn setup() -> (Network, GatheringPlan) {
        let net = Network::build(DeploymentConfig::uniform(60, 150.0).generate(5), 30.0);
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        (net, plan)
    }

    #[test]
    fn plan_svg_is_structurally_complete() {
        let (net, plan) = setup();
        let svg = render_plan_svg(&net, &plan, &RenderOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One circle per sensor + one per polling point.
        let circles = svg.matches("<circle").count();
        assert_eq!(circles, net.n_sensors() + plan.n_polling_points());
        // Tour edges: one line per tour vertex (closed), plus assignment
        // dashes (one per sensor).
        let lines = svg.matches("<line").count();
        assert_eq!(lines, (plan.n_polling_points() + 1) + net.n_sensors());
        // The sink marker.
        assert_eq!(svg.matches("<rect").count(), 2, "background + sink marker");
        assert!(svg.contains(">sink</text>"));
    }

    #[test]
    fn options_toggle_layers() {
        let (net, plan) = setup();
        let bare = render_plan_svg(
            &net,
            &plan,
            &RenderOptions {
                draw_assignments: false,
                ..RenderOptions::default()
            },
        );
        assert_eq!(
            bare.matches("<line").count(),
            plan.n_polling_points() + 1,
            "tour edges only"
        );
        let with_edges = render_plan_svg(
            &net,
            &plan,
            &RenderOptions {
                draw_edges: true,
                ..RenderOptions::default()
            },
        );
        assert!(with_edges.matches("<line").count() > bare.matches("<line").count());
    }

    #[test]
    fn fleet_svg_uses_distinct_colors() {
        let (net, plan) = setup();
        let fleet = plan_fleet(&plan, 3);
        let svg = render_fleet_svg(&net, &plan, &fleet, &RenderOptions::default());
        for (ci, _) in fleet.collectors.iter().enumerate() {
            assert!(svg.contains(FLEET_COLORS[ci % FLEET_COLORS.len()]));
        }
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn coordinates_stay_on_canvas() {
        let (net, plan) = setup();
        let opts = RenderOptions::default();
        let svg = render_plan_svg(&net, &plan, &opts);
        // All cx/cy values must be within the declared canvas (no clipped
        // markers).
        for cap in regex_lite(&svg, "cx=\"") {
            assert!((0.0..=opts.width_px).contains(&cap), "cx {cap} off canvas");
        }
    }

    /// Tiny helper: extracts the f64 after each occurrence of `needle`.
    fn regex_lite(svg: &str, needle: &str) -> Vec<f64> {
        svg.match_indices(needle)
            .map(|(i, _)| {
                let rest = &svg[i + needle.len()..];
                let end = rest.find('"').unwrap();
                rest[..end].parse::<f64>().unwrap()
            })
            .collect()
    }
}
