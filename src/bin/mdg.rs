//! `mdg` — command-line front end for mobile-collector data gathering.
//!
//! ```text
//! mdg plan     --n 200 --side 200 --range 30 [--seed 42] [--cap K]
//!              [--greedy] [--hier] [--tile-cells F] [--out bundle.json]
//!              [--profile] [--profile-json PATH] [--count-allocs]
//! mdg fleet    --bundle bundle.json (--k K | --deadline SECS)
//!              [--speed M/S] [--upload SECS] [--out fleet.json]
//! mdg simulate --bundle bundle.json [--speed M/S] [--upload SECS]
//!              [--battery JOULES]
//! mdg runtime  --n 200 --side 200 --range 30 [--seed 42] [--rounds R]
//!              [--deaths RATE] [--loss RATE] [--policy static|repair]
//!              [--battery JOULES] [--trace out.jsonl] [--profile] [--profile-json PATH]
//! mdg replay   --trace run.jsonl (--self-check | --sweep KNOB=SPEC | [policy knobs])
//!              [--out divergence.jsonl] [--threads T]
//! mdg render   --bundle bundle.json --out figure.svg [--edges]
//! mdg stats    --n 200 --side 200 --range 30 [--seed 42]
//! mdg serve    --listen 127.0.0.1:7717 [--max-sessions 64] [--threads T]
//! mdg serve    --connect 127.0.0.1:7717 --request '{"cmd":"metrics"}'
//! ```
//!
//! `plan` writes a self-contained JSON *bundle* (deployment + range +
//! plan) that the other subcommands consume, so a pipeline like
//! `plan → fleet → render` needs no other state.

use mobile_collectors::core::{fleet, PlanMetrics, PlannerConfig, ShdgPlanner};
use mobile_collectors::net::{DeploymentConfig, Network, TopologyStats};
use mobile_collectors::prelude::*;
use mobile_collectors::render::{render_plan_svg, RenderOptions};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

/// Self-contained planning artifact passed between subcommands.
#[derive(Serialize, Deserialize)]
struct PlanBundle {
    deployment: Deployment,
    range: f64,
    plan: GatheringPlan,
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage("missing subcommand");
    }
    let cmd = args.remove(0);
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => return usage(&e),
    };
    let result = match cmd.as_str() {
        "plan" => cmd_plan(&flags),
        "fleet" => cmd_fleet(&flags),
        "simulate" => cmd_simulate(&flags),
        "runtime" => cmd_runtime(&flags),
        "replay" => cmd_replay(&flags),
        "render" => cmd_render(&flags),
        "stats" => cmd_stats(&flags),
        "export-ilp" => cmd_export_ilp(&flags),
        "serve" => cmd_serve(&flags),
        "help" | "--help" | "-h" => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => return usage(&format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  mdg plan     --n N --side METERS --range METERS [--seed S] [--cap K] [--greedy] [--threads T]
               [--hier] [--no-hier] [--hier-threshold N] [--tile-cells F] [--out bundle.json]
               [--profile] [--profile-json PATH] [--count-allocs]
  mdg fleet    --bundle bundle.json (--k K | --deadline SECS) [--speed M/S] [--upload SECS] [--out fleet.json]
  mdg simulate --bundle bundle.json [--speed M/S] [--upload SECS] [--battery JOULES]
  mdg runtime  --n N --side METERS --range METERS [--seed S] [--rounds R] [--deaths RATE]
               [--loss RATE] [--policy static|repair] [--battery JOULES] [--trace out.jsonl]
               [--threads T] [--profile] [--profile-json PATH]
  mdg replay   --trace run.jsonl --self-check
  mdg replay   --trace run.jsonl [--policy static|repair] [--retries N] [--backoff SECS]
               [--replan-threshold F] [--improve-passes P] [--out divergence.jsonl] [--threads T]
  mdg replay   --trace run.jsonl --sweep KNOB=LO..HI|KNOB=V1,V2,... [--out divergence.jsonl]
               [--threads T]
  mdg render   --bundle bundle.json --out figure.svg [--edges]
  mdg stats    --n N --side METERS --range METERS [--seed S]
  mdg export-ilp --n N --side METERS --range METERS [--seed S] --out model.lp
  mdg serve    --listen ADDR[:PORT] [--max-sessions N] [--max-line-mb MB] [--threads T]
               [--count-allocs]
  mdg serve    --connect ADDR:PORT --request JSON

--threads T sets the planner worker-thread count (0 or omitted = auto:
MDG_THREADS env, else all cores). Plans are bit-identical at any T.
--hier plans hierarchically (tile the field, plan tiles in parallel,
stitch + seam touch-up) — the mode for 100k+ sensors. Fields above
--hier-threshold sensors (default 50000) pick --hier automatically;
--no-hier forces the flat planner at any size. --tile-cells F sets the
tile side to F × range (omitted = auto-sized by density).
--profile prints a per-phase timing tree on stderr; --profile-json PATH
writes the same data as JSONL. Profiling never changes results.
--count-allocs (or MDG_COUNT_ALLOC=1) tallies heap allocations and
appends alloc=<count>/<MiB> to the stderr timing lines; combined with
--profile the tree gains per-phase alloc columns. Never changes plans.
replay re-runs a recorded trace bundle (from `runtime --trace`) under an
alternate repair policy and reports per-round divergences; --self-check
verifies the original policy reproduces the recording byte-for-byte, and
--sweep replays up to 20 values of one knob (retry_budget, backoff_secs,
replan_threshold or improve_passes). Trace format: docs/TRACE_FORMAT.md.";

/// Applies `--threads` (0 = auto) to the global `mdg-par` policy and
/// returns the effective thread count for the stderr report. An explicit
/// request beyond the pool limit is clamped *with a warning* — silently
/// reporting only the effective count hid the clamp from the user.
fn apply_threads(flags: &Flags) -> Result<usize, String> {
    let t: usize = opt(flags, "threads", 0)?;
    mobile_collectors::par::set_threads(t);
    let effective = mobile_collectors::par::threads();
    if t > 0 && effective != t {
        eprintln!(
            "warning: --threads {t} exceeds the pool limit; clamped to {effective} (max {})",
            mobile_collectors::par::MAX_THREADS
        );
    }
    Ok(effective)
}

/// Turns profiling on (cleanly) when `--profile` or `--profile-json` is
/// present. Returns whether it did.
fn apply_profile(flags: &Flags) -> bool {
    let on = flags.contains_key("profile") || flags.contains_key("profile-json");
    if on {
        mobile_collectors::obs::reset();
        mobile_collectors::obs::set_enabled(true);
    }
    on
}

/// Turns the counting allocator on when `--count-allocs` is present (the
/// `MDG_COUNT_ALLOC` env var works too, so tests and CI can reach child
/// processes). Returns whether counting is now on.
fn apply_alloc_counting(flags: &Flags) -> bool {
    if flags.contains_key("count-allocs") {
        mobile_collectors::obs::alloc::set_counting(true);
    }
    mobile_collectors::obs::alloc::counting_from_env()
}

/// ` alloc=<count>/<MiB>` suffix for stderr timing lines: the allocation
/// count and bytes since `base`. Empty when counting is off, so the
/// timing lines stay byte-stable for existing consumers.
fn alloc_suffix(base: &mobile_collectors::obs::alloc::AllocTotals) -> String {
    if !mobile_collectors::obs::alloc::counting() {
        return String::new();
    }
    let d = mobile_collectors::obs::alloc::totals().since(base);
    format!(
        " alloc={}/{:.1}MiB",
        d.count,
        d.bytes as f64 / (1024.0 * 1024.0)
    )
}

/// Emits the recorded profile: the summary tree on stderr for `--profile`,
/// JSONL to the `--profile-json` path.
fn emit_profile(flags: &Flags) -> Result<(), String> {
    let prof = mobile_collectors::obs::snapshot();
    if flags.contains_key("profile") {
        eprint!("{}", prof.render_tree());
    }
    if let Some(path) = flags.get("profile-json") {
        if path.is_empty() {
            return Err("--profile-json needs a file path".into());
        }
        std::fs::write(path, prof.to_jsonl()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("  profile json   : {path}");
    }
    Ok(())
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}\n{USAGE}");
    ExitCode::FAILURE
}

type Flags = HashMap<String, String>;

/// Parses `--key value` pairs; bare `--flag` (no value, or followed by
/// another flag) stores an empty string.
fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got `{}`", args[i]))?;
        if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            flags.insert(key.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            flags.insert(key.to_string(), String::new());
            i += 1;
        }
    }
    Ok(flags)
}

fn req<T: std::str::FromStr>(flags: &Flags, key: &str) -> Result<T, String> {
    flags
        .get(key)
        .ok_or_else(|| format!("missing required flag --{key}"))?
        .parse()
        .map_err(|_| format!("invalid value for --{key}"))
}

fn opt<T: std::str::FromStr>(flags: &Flags, key: &str, default: T) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid value for --{key}")),
    }
}

/// A required flag that must parse as a finite, strictly positive number
/// (field sides and radio ranges); rejects bad values with a clean error
/// instead of tripping a library assert.
fn req_positive(flags: &Flags, key: &str) -> Result<f64, String> {
    let v: f64 = req(flags, key)?;
    if !(v.is_finite() && v > 0.0) {
        return Err(format!("--{key} must be a positive number, got {v}"));
    }
    Ok(v)
}

fn load_bundle(flags: &Flags) -> Result<PlanBundle, String> {
    let path: PathBuf = req(flags, "bundle")?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("bad bundle {}: {e}", path.display()))
}

fn cmd_plan(flags: &Flags) -> Result<(), String> {
    let n: usize = req(flags, "n")?;
    let side = req_positive(flags, "side")?;
    let range = req_positive(flags, "range")?;
    let seed: u64 = opt(flags, "seed", 42)?;
    let threads = apply_threads(flags)?;
    let profiling = apply_profile(flags);
    apply_alloc_counting(flags);
    let alloc_base = mobile_collectors::obs::alloc::totals();
    let deployment = DeploymentConfig::uniform(n, side).generate(seed);
    let network = Network::build(deployment.clone(), range);

    let mut cfg = PlannerConfig::default();
    if flags.contains_key("greedy") {
        cfg.covering = mobile_collectors::core::CoveringStrategy::Greedy;
    }
    if let Some(cap) = flags.get("cap") {
        let cap: usize = cap
            .parse()
            .map_err(|_| "invalid value for --cap".to_string())?;
        cfg.max_sensors_per_pp = Some(cap);
    }
    let hier_flag = flags.contains_key("hier");
    let no_hier = flags.contains_key("no-hier");
    if hier_flag && no_hier {
        return Err("--hier and --no-hier are mutually exclusive".into());
    }
    let hier_threshold: usize = opt(flags, "hier-threshold", 50_000)?;
    let hier = hier_flag || (!no_hier && n > hier_threshold);
    if hier && !hier_flag {
        // The note goes to stderr: stdout stays byte-deterministic.
        eprintln!(
            "  note: {n} sensors exceeds --hier-threshold {hier_threshold}; \
             planning hierarchically (--no-hier forces the flat planner)"
        );
    }
    if flags.contains_key("tile-cells") && !hier {
        return Err("--tile-cells only makes sense with --hier".into());
    }
    let t_plan = std::time::Instant::now();
    let (plan, hier_stats) = if hier {
        let mut hcfg = mobile_collectors::core::HierConfig {
            base: cfg,
            ..mobile_collectors::core::HierConfig::default()
        };
        if flags.contains_key("tile-cells") {
            hcfg.tile_cells = Some(req_positive(flags, "tile-cells")?);
        }
        let (plan, stats) = mobile_collectors::core::HierPlanner::with_config(hcfg)
            .plan_with_stats(&network)
            .map_err(|e| e.to_string())?;
        (plan, Some(stats))
    } else {
        let plan = ShdgPlanner::with_config(cfg)
            .plan(&network)
            .map_err(|e| e.to_string())?;
        (plan, None)
    };
    let plan_ms = t_plan.elapsed().as_secs_f64() * 1e3;
    if profiling {
        emit_profile(flags)?;
    }
    plan.validate(&network.deployment.sensors, range)
        .map_err(|e| format!("internal: {e}"))?;

    let m = PlanMetrics::of(&plan, &network.deployment.sensors);
    println!(
        "planned {} sensors on a {side:.0} m field (R = {range:.0} m, seed {seed})",
        n
    );
    // Timing goes to stderr: stdout stays byte-deterministic per seed.
    eprintln!(
        "  planning time  : {plan_ms:.1} ms ({threads} threads){}",
        alloc_suffix(&alloc_base)
    );
    if let Some(s) = hier_stats {
        println!(
            "  tiles          : {} occupied / {} total, {:.0} m side, {} spliced stop(s)",
            s.n_occupied, s.n_tiles, s.tile_side, s.spliced_stops
        );
    }
    println!("  polling points : {}", m.n_polling_points);
    println!("  tour           : {:.1} m", m.tour_length);
    println!(
        "  mean upload    : {:.1} m (max {:.1})",
        m.mean_upload_dist, m.max_upload_dist
    );
    println!("  buffer (max/pp): {}", m.max_sensors_per_pp);

    if let Some(out) = flags.get("out") {
        let bundle = PlanBundle {
            deployment,
            range,
            plan,
        };
        let json = serde_json::to_string_pretty(&bundle).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("  bundle         : {out}");
    }
    Ok(())
}

fn cmd_fleet(flags: &Flags) -> Result<(), String> {
    let bundle = load_bundle(flags)?;
    let speed: f64 = opt(flags, "speed", 1.0)?;
    let upload: f64 = opt(flags, "upload", 0.5)?;
    let fleet_plan = if flags.contains_key("k") {
        let k: usize = req(flags, "k")?;
        fleet::plan_fleet(&bundle.plan, k)
    } else if flags.contains_key("deadline") {
        let deadline: f64 = req(flags, "deadline")?;
        fleet::plan_fleet_for_deadline(&bundle.plan, deadline, speed, upload)
            .ok_or("no fleet can meet this deadline (a polling point alone misses it)")?
    } else {
        return Err("fleet needs --k or --deadline".into());
    };
    fleet_plan
        .validate(&bundle.plan)
        .map_err(|e| format!("internal: {e}"))?;
    println!("fleet of {} collector(s)", fleet_plan.n_collectors());
    println!("  max sub-tour : {:.1} m", fleet_plan.max_length());
    println!("  total travel : {:.1} m", fleet_plan.total_length());
    println!(
        "  makespan     : {:.1} s at {speed} m/s + {upload} s/upload",
        fleet_plan.makespan(speed, upload)
    );
    for (i, c) in fleet_plan.collectors.iter().enumerate() {
        println!(
            "  collector {i}: {} stops, {} sensors, {:.1} m",
            c.polling_points.len(),
            c.sensors_served,
            c.length
        );
    }
    if let Some(out) = flags.get("out") {
        let json = serde_json::to_string_pretty(&fleet_plan).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("  fleet json   : {out}");
    }
    Ok(())
}

fn cmd_simulate(flags: &Flags) -> Result<(), String> {
    let bundle = load_bundle(flags)?;
    let speed: f64 = opt(flags, "speed", 1.0)?;
    let upload: f64 = opt(flags, "upload", 0.5)?;
    let cfg = SimConfig {
        speed_mps: speed,
        upload_secs: upload,
        ..SimConfig::default()
    };
    let scen = scenario_from_plan(&bundle.plan, &bundle.deployment.sensors);
    if let Some(battery) = flags.get("battery") {
        let battery: f64 = battery
            .parse()
            .map_err(|_| "invalid value for --battery".to_string())?;
        let mut sim = MobileGatheringSim::new(scen, cfg);
        let life = simulate_lifetime(&mut sim, battery, 1_000_000);
        println!("lifetime with {battery} J batteries:");
        println!("  first death : {:?}", life.first_death_round);
        println!("  10% dead    : {:?}", life.ten_pct_death_round);
        println!("  50% dead    : {:?}", life.half_death_round);
        println!("  packets     : {}", life.total_delivered);
    } else {
        let round = MobileGatheringSim::new(scen, cfg).run();
        println!("one collection round:");
        println!(
            "  duration : {:.1} s ({:.1} min)",
            round.duration_secs,
            round.duration_secs / 60.0
        );
        println!(
            "  packets  : {}/{}",
            round.packets_delivered, round.packets_expected
        );
        println!(
            "  energy   : {:.3} mJ across sensors",
            round.total_joules() * 1e3
        );
        println!("  fairness : {:.3} (Jain)", round.ledger.fairness());
    }
    Ok(())
}

fn cmd_runtime(flags: &Flags) -> Result<(), String> {
    let n: usize = req(flags, "n")?;
    let side = req_positive(flags, "side")?;
    let range = req_positive(flags, "range")?;
    let seed: u64 = opt(flags, "seed", 42)?;
    let rounds: u64 = opt(flags, "rounds", 20)?;
    let deaths: f64 = opt(flags, "deaths", 0.1)?;
    if !(0.0..=1.0).contains(&deaths) {
        return Err(format!("--deaths must be in [0, 1], got {deaths}"));
    }
    let loss: f64 = opt(flags, "loss", 0.05)?;
    if !(0.0..=1.0).contains(&loss) {
        return Err(format!("--loss must be in [0, 1], got {loss}"));
    }
    let policy = match flags.get("policy").map(String::as_str) {
        None | Some("repair") => RepairPolicy::Repair,
        Some("static") => RepairPolicy::Static,
        Some(other) => return Err(format!("unknown policy `{other}` (static|repair)")),
    };

    let threads = apply_threads(flags)?;
    let profiling = apply_profile(flags);
    let network = Network::build(DeploymentConfig::uniform(n, side).generate(seed), range);
    let t_plan = std::time::Instant::now();
    let plan = ShdgPlanner::new()
        .plan(&network)
        .map_err(|e| e.to_string())?;
    let plan_ms = t_plan.elapsed().as_secs_f64() * 1e3;
    eprintln!("  planning time  : {plan_ms:.1} ms ({threads} threads)");
    // Deaths spread over the first ~60% of the run, so repair has rounds
    // left in which to recover.
    let horizon = plan.collection_time(1.0, 0.5) * rounds as f64 * 0.6;
    let cfg = RuntimeConfig {
        faults: FaultConfig {
            seed,
            death_rate: deaths,
            death_horizon_secs: horizon,
            loss_rate: loss,
            ..FaultConfig::default()
        },
        policy,
        max_rounds: rounds,
        battery_j: flags
            .get("battery")
            .map(|b| b.parse().map_err(|_| "invalid value for --battery"))
            .transpose()?,
        ..RuntimeConfig::default()
    };
    let mut rt = GatheringRuntime::new(network, plan, cfg);
    let report = if let Some(path) = flags.get("trace") {
        // The header makes the trace a self-describing bundle `mdg replay`
        // can reconstruct; the compact Uniform manifest suffices because
        // this command always deploys uniformly from (n, side, seed).
        let header = TraceHeader::new(ReplayManifest {
            topology: TopologyManifest::Uniform { n, side, seed },
            range,
            config: cfg,
        });
        let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        let mut trace = TraceWriter::with_header(std::io::BufWriter::new(file), &header)
            .map_err(|e| format!("trace write failed: {e}"))?;
        let report = rt
            .run_traced(&mut trace)
            .map_err(|e| format!("trace write failed: {e}"))?;
        trace.into_inner().map_err(|e| e.to_string())?;
        println!("trace    : {path} ({} rounds)", report.rounds);
        report
    } else {
        rt.run()
    };
    if profiling {
        emit_profile(flags)?;
    }

    println!(
        "runtime  : {n} sensors, {rounds} rounds, {deaths:.0}% deaths, {loss:.0}% loss, {policy:?}",
        deaths = deaths * 100.0,
        loss = loss * 100.0
    );
    println!(
        "  delivery     : {}/{} packets ({:.1}%)",
        report.delivered,
        report.expected,
        report.delivery_ratio() * 100.0
    );
    println!(
        "  orphan time  : {:.0} sensor-seconds over {} sensor-rounds",
        report.orphan_secs, report.orphan_sensor_rounds
    );
    println!(
        "  repairs      : {} ({} full re-plans, {} stops removed, {} added, {} µs wall)",
        report.repairs,
        report.full_replans,
        report.stops_removed,
        report.stops_added,
        report.repair_wall_micros
    );
    println!(
        "  deaths       : {} by fault, {} by battery; {} sensors alive after {:.0} s",
        report.fault_deaths, report.energy_deaths, report.final_alive, report.elapsed_secs
    );
    println!(
        "  retries/drops: {} / {}; final tour {:.1} m",
        report.retries, report.drops, report.final_tour_length
    );
    Ok(())
}

/// `mdg replay`: counterfactual replay of a recorded trace bundle. Three
/// modes — `--self-check` (verify the original policy reproduces the
/// recording byte-for-byte), single counterfactual (policy-knob flags),
/// and `--sweep KNOB=SPEC` (bounded fan-out over one knob). Divergence
/// records go to `--out` as JSONL; summaries go to stdout.
fn cmd_replay(flags: &Flags) -> Result<(), String> {
    use mobile_collectors::runtime::replay::{divergences_to_jsonl, sweep_to_jsonl};

    let path: PathBuf = req(flags, "trace")?;
    let threads = apply_threads(flags)?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let bundle = parse_bundle(&text).map_err(|e| format!("bad trace {}: {e}", path.display()))?;
    let engine = ReplayEngine::from_bundle(&bundle).map_err(|e| e.to_string())?;
    let m = engine.manifest();
    println!(
        "replay   : {} ({} rounds, {} sensors, seed {}, {:?})",
        path.display(),
        engine.recorded().len(),
        m.topology.n_sensors(),
        m.config.faults.seed,
        m.config.policy
    );

    if flags.contains_key("self-check") {
        let report = engine.self_check();
        if report.ok() {
            println!(
                "  self-check   : OK — {} rounds reproduced byte-for-byte",
                report.rounds_recorded
            );
            return Ok(());
        }
        if let Some((rec, rep)) = &report.first_diff {
            eprintln!("  recorded : {rec}");
            eprintln!("  replayed : {rep}");
        }
        return Err(format!(
            "self-check FAILED: {} of {} rounds diverge (replayed {}) — the determinism \
             contract is broken between recorder and replayer",
            report.divergent_rounds.len(),
            report.rounds_recorded,
            report.rounds_replayed
        ));
    }

    if let Some(spec) = flags.get("sweep") {
        let spec = SweepSpec::parse(spec).map_err(|e| e.to_string())?;
        let points = engine.sweep(&spec).map_err(|e| e.to_string())?;
        println!(
            "  sweep        : {} = {:?} ({} threads)",
            spec.knob, spec.values, threads
        );
        println!(
            "  {:>12} {:>10} {:>8} {:>8} {:>12} {:>10}",
            "value", "delivered", "drops", "diverged", "orphan_s", "tour_m"
        );
        for p in &points {
            let c = &p.result.counterfactual;
            println!(
                "  {:>12} {:>10} {:>8} {:>8} {:>12.0} {:>10.1}",
                p.value,
                c.delivered,
                c.drops,
                p.result.divergences.len(),
                c.orphan_secs,
                c.final_tour_length_m
            );
        }
        if let Some(out) = flags.get("out") {
            let jsonl = sweep_to_jsonl(&points);
            std::fs::write(out, &jsonl).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("  divergences  : {out} ({} records)", jsonl.lines().count());
        }
        return Ok(());
    }

    let mut overrides = PolicyOverrides::default();
    if let Some(p) = flags.get("policy") {
        overrides.policy = Some(match p.as_str() {
            "repair" => RepairPolicy::Repair,
            "static" => RepairPolicy::Static,
            other => return Err(format!("unknown policy `{other}` (static|repair)")),
        });
    }
    for (flag, knob) in [
        ("retries", "retry_budget"),
        ("backoff", "backoff_secs"),
        ("replan-threshold", "replan_threshold"),
        ("improve-passes", "improve_passes"),
    ] {
        if flags.contains_key(flag) {
            let v: f64 = req(flags, flag)?;
            overrides.set(knob, v).map_err(|e| e.to_string())?;
        }
    }
    let result = engine.replay(&overrides);
    println!("  policy       : {}", result.overrides);
    let orig = &result.original;
    let cf = &result.counterfactual;
    println!(
        "  delivery     : {}/{} → {}/{} ({:+.1} pp)",
        orig.delivered,
        orig.expected,
        cf.delivered,
        cf.expected,
        (cf.delivery_ratio() - orig.delivery_ratio()) * 100.0
    );
    println!(
        "  drops/retries: {}/{} → {}/{}",
        orig.drops, orig.retries, cf.drops, cf.retries
    );
    println!(
        "  repairs      : {} ({} full) → {} ({} full); orphan {:.0} s → {:.0} s",
        orig.repairs,
        orig.full_replans,
        cf.repairs,
        cf.full_replans,
        orig.orphan_secs,
        cf.orphan_secs
    );
    println!(
        "  divergences  : {} of {} rounds",
        result.divergences.len(),
        orig.rounds.max(cf.rounds)
    );
    if let Some(out) = flags.get("out") {
        let jsonl = divergences_to_jsonl(&result.divergences);
        std::fs::write(out, &jsonl).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("  records      : {out}");
    }
    Ok(())
}

fn cmd_render(flags: &Flags) -> Result<(), String> {
    let bundle = load_bundle(flags)?;
    let out: PathBuf = req(flags, "out")?;
    let network = Network::build(bundle.deployment.clone(), bundle.range);
    let opts = RenderOptions {
        draw_edges: flags.contains_key("edges"),
        ..RenderOptions::default()
    };
    let svg = render_plan_svg(&network, &bundle.plan, &opts);
    std::fs::write(&out, svg).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!("wrote {}", out.display());
    Ok(())
}

fn cmd_export_ilp(flags: &Flags) -> Result<(), String> {
    let n: usize = req(flags, "n")?;
    let side = req_positive(flags, "side")?;
    let range = req_positive(flags, "range")?;
    let seed: u64 = opt(flags, "seed", 42)?;
    let out: PathBuf = req(flags, "out")?;
    let network = Network::build(DeploymentConfig::uniform(n, side).generate(seed), range);
    let ilp = mobile_collectors::core::IlpInstance::from_network(&network);
    let lp = ilp.to_lp();
    std::fs::write(&out, &lp).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "wrote {} ({} candidates, {} lines) — feed it to any LP-format MIP solver",
        out.display(),
        n,
        lp.lines().count()
    );
    Ok(())
}

/// `mdg serve`: either run the planning daemon in the foreground
/// (`--listen`) or act as a one-shot protocol client (`--connect` +
/// `--request`), which makes the daemon scriptable from CI and shells
/// without another binary.
fn cmd_serve(flags: &Flags) -> Result<(), String> {
    match (flags.get("listen"), flags.get("connect")) {
        (Some(addr), None) => {
            if addr.is_empty() {
                return Err("--listen needs an address, e.g. 127.0.0.1:7717".into());
            }
            let threads = apply_threads(flags)?;
            apply_alloc_counting(flags);
            let alloc_base = mobile_collectors::obs::alloc::totals();
            let cfg = mobile_collectors::serve::ServeConfig {
                addr: addr.clone(),
                max_sessions: opt(flags, "max-sessions", 64)?,
                max_line_bytes: opt(flags, "max-line-mb", 32usize)? << 20,
                ..mobile_collectors::serve::ServeConfig::default()
            };
            let server = mobile_collectors::serve::Server::start(cfg)
                .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
            // The address line goes to stdout (scripts parse it to find an
            // ephemeral port); everything else is stderr.
            println!("listening on {}", server.local_addr());
            eprintln!("  {threads} planner thread(s); send {{\"cmd\":\"shutdown\"}} to stop");
            server.join();
            eprintln!("drained; bye{}", alloc_suffix(&alloc_base));
            Ok(())
        }
        (None, Some(addr)) => {
            let request = flags
                .get("request")
                .filter(|r| !r.is_empty())
                .ok_or("--connect needs --request JSON")?;
            let mut client = mobile_collectors::serve::Client::connect(addr)
                .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            let response = client
                .send_raw(request)
                .map_err(|e| format!("request failed: {e}"))?;
            println!("{response}");
            // Exit nonzero on a server-side error so shell pipelines fail.
            let ack: mobile_collectors::serve::protocol::Ack = serde_json::from_str(&response)
                .map_err(|e| format!("unparseable response: {e}"))?;
            if ack.ok {
                Ok(())
            } else {
                Err("server returned an error response".into())
            }
        }
        _ => Err("serve needs exactly one of --listen or --connect".into()),
    }
}

fn cmd_stats(flags: &Flags) -> Result<(), String> {
    let n: usize = req(flags, "n")?;
    let side = req_positive(flags, "side")?;
    let range = req_positive(flags, "range")?;
    let seed: u64 = opt(flags, "seed", 42)?;
    let network = Network::build(DeploymentConfig::uniform(n, side).generate(seed), range);
    let s = TopologyStats::of_network(&network);
    let mh = MultihopMetrics::of(&network);
    println!("topology: {n} sensors, {side:.0} m field, R = {range:.0} m, seed {seed}");
    println!("  edges            : {}", s.m);
    println!(
        "  degree           : mean {:.1}, min {}, max {}",
        s.mean_degree, s.min_degree, s.max_degree
    );
    println!("  isolated sensors : {}", s.isolated);
    println!(
        "  components       : {} (largest {})",
        s.components, s.largest_component
    );
    println!(
        "  sink reach       : {}/{} sensors, mean {:.1} hops",
        mh.reachable, n, mh.mean_hops
    );
    Ok(())
}
