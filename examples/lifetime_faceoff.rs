//! Network lifetime: mobile single-hop gathering vs multi-hop routing.
//!
//! Runs both schemes' rounds against identical batteries until sensors
//! start dying. Multi-hop routing funnels every packet through the
//! sink-adjacent sensors, which burn out first; the mobile collector
//! spreads the load perfectly (one bounded-distance transmission per
//! sensor per round).
//!
//! ```text
//! cargo run --release --example lifetime_faceoff
//! ```

use mobile_collectors::prelude::*;

fn main() {
    let network = Network::build(DeploymentConfig::uniform(200, 200.0).generate(3), 30.0);
    let battery_j = 0.5;
    let max_rounds = 200_000;
    let cfg = SimConfig::default();

    // Mobile single-hop gathering.
    let plan = ShdgPlanner::new().plan(&network).unwrap();
    let scen = scenario_from_plan(&plan, &network.deployment.sensors);
    let mut mobile = MobileGatheringSim::new(scen, cfg);
    let mobile_life = simulate_lifetime(&mut mobile, battery_j, max_rounds);

    // Static multi-hop routing.
    let mut routing = MultihopRoutingSim::new(&network, cfg);
    let routing_life = simulate_lifetime(&mut routing, battery_j, max_rounds);

    println!(
        "200 sensors, 200 m field, R = 30 m, {battery_j} J batteries (cap {max_rounds} rounds)\n"
    );
    let show = |name: &str, l: &mobile_collectors::sim::LifetimeReport| {
        println!("{name}:");
        println!("  first death : {}", fmt_round(l.first_death_round));
        println!("  10% dead    : {}", fmt_round(l.ten_pct_death_round));
        println!("  50% dead    : {}", fmt_round(l.half_death_round));
        println!("  packets     : {}\n", l.total_delivered);
    };
    show("mobile single-hop (SHDG)", &mobile_life);
    show("multi-hop routing", &routing_life);

    if let (Some(m), Some(r)) = (
        mobile_life.first_death_round,
        routing_life.first_death_round,
    ) {
        println!(
            "the mobile collector extends time-to-first-death by {:.1}×",
            m as f64 / r as f64
        );
    }
}

fn fmt_round(r: Option<u64>) -> String {
    match r {
        Some(r) => format!("round {r}"),
        None => "not reached".to_string(),
    }
}
