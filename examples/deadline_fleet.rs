//! Multi-collector planning under a data-gathering deadline.
//!
//! A single collector at ~1 m/s needs the better part of an hour to sweep
//! a 400 m field. When the application demands fresher data, the paper's
//! answer is a fleet of M-collectors, each covering a slice of the tour.
//! This example sizes the fleet for a series of deadlines.
//!
//! ```text
//! cargo run --release --example deadline_fleet
//! ```

use mobile_collectors::core::fleet;
use mobile_collectors::prelude::*;

fn main() {
    let network = Network::build(DeploymentConfig::uniform(400, 400.0).generate(11), 30.0);
    let plan = ShdgPlanner::new().plan(&network).unwrap();

    let speed = 1.0; // m/s
    let upload = 0.5; // s per packet
    let single = plan.collection_time(speed, upload);
    println!(
        "single collector: {} polling points, {:.0} m tour, {:.1} min per round",
        plan.n_polling_points(),
        plan.tour_length,
        single / 60.0
    );

    println!("\ndeadline sizing (travel at {speed} m/s, {upload} s per upload):");
    println!("  deadline   collectors   makespan   slack");
    for minutes in [30.0, 20.0, 15.0, 10.0, 5.0, 2.0] {
        let deadline = minutes * 60.0;
        match fleet::plan_fleet_for_deadline(&plan, deadline, speed, upload) {
            Some(f) => {
                let makespan = f.makespan(speed, upload);
                println!(
                    "  {:5.1} min   {:10}   {:6.1} min   {:4.1} min",
                    minutes,
                    f.n_collectors(),
                    makespan / 60.0,
                    (deadline - makespan) / 60.0
                );
                f.validate(&plan)
                    .expect("fleet covers every polling point exactly once");
            }
            None => println!(
                "  {minutes:5.1} min   impossible: some polling point alone misses the deadline"
            ),
        }
    }

    // Fixed-size fleet: how the makespan falls with k.
    println!("\nfixed fleet sizes (tour splitting vs angular sectors):");
    println!("  k   split max (m)   angular max (m)");
    for k in [1, 2, 3, 4, 6, 8] {
        let split = fleet::plan_fleet(&plan, k);
        let angular = fleet::plan_fleet_angular(&plan, k);
        println!(
            "  {k}   {:13.0}   {:15.0}",
            split.max_length(),
            angular.max_length()
        );
    }
}
