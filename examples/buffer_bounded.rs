//! Buffer-bounded polling points.
//!
//! The paper motivates bounding how many sensors one collection point may
//! serve: the polling point (or the pausing collector) must buffer every
//! affiliated packet, and a crowded stop also means a long pause. This
//! example sweeps the buffer cap and shows the tour/polling-point cost of
//! tight buffers.
//!
//! ```text
//! cargo run --release --example buffer_bounded
//! ```

use mobile_collectors::core::{PlannerConfig, ShdgPlanner};
use mobile_collectors::prelude::*;

fn main() {
    let network = Network::build(DeploymentConfig::uniform(300, 200.0).generate(42), 30.0);
    println!("300 sensors on a 200 m field, R = 30 m; upload pause 0.5 s/packet\n");
    println!("  buffer cap   polling points   tour (m)   worst stop pause (s)");
    for cap in [None, Some(40), Some(20), Some(10), Some(5), Some(2)] {
        let cfg = PlannerConfig {
            max_sensors_per_pp: cap,
            ..PlannerConfig::default()
        };
        let plan = ShdgPlanner::with_config(cfg).plan(&network).unwrap();
        plan.validate(&network.deployment.sensors, network.range)
            .unwrap();
        if let Some(c) = cap {
            assert!(plan.max_sensors_per_pp() <= c, "planner must honor the cap");
        }
        let label = cap.map_or("unbounded".to_string(), |c| format!("{c:9}"));
        println!(
            "  {label:>10}   {:14}   {:8.0}   {:.1}",
            plan.n_polling_points(),
            plan.tour_length,
            0.5 * plan.max_sensors_per_pp() as f64,
        );
    }
    println!(
        "\ntight buffers trade tour length (and hence latency) for bounded \
         per-stop memory and pause time; cap = 1 would degenerate to visiting \
         every sensor."
    );
}
