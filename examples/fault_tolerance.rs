//! Fault tolerance: a static SHDG plan vs online repair when sensors die.
//!
//! Both runs replay the *same* seeded fault schedule — 20% of the sensors
//! fail during the first half of the run, and every upload has a 10%
//! chance of being lost (with retries). The static plan keeps driving the
//! original tour, so every sensor whose polling point lost its anchor is
//! orphaned for the rest of the run; the repairing runtime detects the
//! dead anchor after one round, splices replacement stops into the tour,
//! and re-covers the orphans.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use mobile_collectors::prelude::*;
use mobile_collectors::runtime::RuntimeReport;

fn main() {
    let network = Network::build(DeploymentConfig::uniform(150, 200.0).generate(7), 30.0);
    let plan = ShdgPlanner::new().plan(&network).unwrap();
    let rounds = 25;
    let horizon = plan.collection_time(1.0, 0.5) * rounds as f64 * 0.5;

    let faults = FaultConfig {
        seed: 7,
        death_rate: 0.2,
        death_horizon_secs: horizon,
        loss_rate: 0.1,
        max_retries: 3,
        backoff_secs: 0.2,
        ..FaultConfig::default()
    };

    let run = |policy| {
        let cfg = RuntimeConfig {
            faults,
            policy,
            max_rounds: rounds,
            ..RuntimeConfig::default()
        };
        GatheringRuntime::new(network.clone(), plan.clone(), cfg).run()
    };
    let static_run = run(RepairPolicy::Static);
    let repair_run = run(RepairPolicy::Repair);

    println!(
        "150 sensors, 200 m field, R = 30 m — 20% die within {:.0} s, 10% upload loss\n",
        horizon
    );
    let show = |name: &str, r: &RuntimeReport| {
        println!("{name}:");
        println!(
            "  delivery    : {}/{} packets ({:.1}%)",
            r.delivered,
            r.expected,
            r.delivery_ratio() * 100.0
        );
        println!(
            "  orphan time : {:.0} sensor-seconds ({} sensor-rounds uncovered)",
            r.orphan_secs, r.orphan_sensor_rounds
        );
        println!(
            "  repairs     : {} ({} stops removed, {} added, {} µs wall)",
            r.repairs, r.stops_removed, r.stops_added, r.repair_wall_micros
        );
        println!("  final tour  : {:.1} m\n", r.final_tour_length);
    };
    show("static plan (paper's offline SHDG)", &static_run);
    show("online repair (mdg-runtime)", &repair_run);

    if repair_run.orphan_secs > 0.0 {
        println!(
            "repair cuts orphaned-sensor time by {:.1}× and recovers {} extra packets",
            static_run.orphan_secs / repair_run.orphan_secs,
            repair_run.delivered - static_run.delivered
        );
    } else {
        println!(
            "repair eliminates orphaned-sensor time entirely (static: {:.0} sensor-seconds)",
            static_run.orphan_secs
        );
    }
}
