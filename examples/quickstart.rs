//! Quickstart: plan one single-collector data-gathering tour and inspect
//! it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mobile_collectors::prelude::*;

fn main() {
    // The paper's standard setup: sensors uniformly random over a square
    // field, sink at the center, transmission range 30 m.
    let deployment = DeploymentConfig::uniform(200, 200.0).generate(42);
    let network = Network::build(deployment, 30.0);
    println!(
        "network: {} sensors on a {:.0} m field, R = {:.0} m, avg degree {:.1}, connected: {}",
        network.n_sensors(),
        network.deployment.field.width(),
        network.range,
        network.sensor_graph.avg_degree(),
        network.is_connected(),
    );

    // Plan the polling points and the collector tour.
    let plan = ShdgPlanner::new()
        .plan(&network)
        .expect("sensor-site planning always succeeds");
    plan.validate(&network.deployment.sensors, network.range)
        .expect("plan is consistent");

    let metrics = PlanMetrics::of(&plan, &network.deployment.sensors);
    println!("\nSHDG plan:");
    println!("  polling points : {}", metrics.n_polling_points);
    println!("  tour length    : {:.1} m", metrics.tour_length);
    println!(
        "  mean upload    : {:.1} m (max {:.1} m ≤ R)",
        metrics.mean_upload_dist, metrics.max_upload_dist
    );
    println!(
        "  sensors per PP : mean {:.1}, max {}",
        metrics.mean_sensors_per_pp, metrics.max_sensors_per_pp
    );
    println!(
        "  round time     : {:.1} min at 1 m/s with 0.5 s/upload",
        plan.collection_time(1.0, 0.5) / 60.0
    );

    println!("\ntour (sink first):");
    for (i, pp) in plan.polling_points.iter().enumerate() {
        println!(
            "  stop {:2}: sensor {:3} at {} serving {} sensor(s)",
            i + 1,
            pp.candidate,
            pp.pos,
            pp.covered.len()
        );
    }

    // Compare with the no-aggregation extreme.
    let va = visit_all_plan(&network);
    println!(
        "\nvisit-every-sensor tour would be {:.1} m — the polling-point tour is {:.0}% shorter",
        va.tour_length,
        (1.0 - plan.tour_length / va.tour_length) * 100.0
    );

    // And with static multi-hop routing.
    let mh = MultihopMetrics::of(&network);
    println!(
        "multi-hop routing would relay each packet {:.1} hops on average ({} transmissions \
         per round vs SHDG's {})",
        mh.mean_hops,
        mh.transmissions_per_round,
        network.n_sensors()
    );
}
