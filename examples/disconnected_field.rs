//! Mobile collection on a *disconnected* deployment.
//!
//! Three sensor corridors separated by 80 m gaps: multi-hop routing can
//! never reach two of the three islands, while the mobile collector simply
//! drives to them. This is one of the motivating scenarios of mobile data
//! gathering.
//!
//! ```text
//! cargo run --release --example disconnected_field
//! ```

use mobile_collectors::net::components;
use mobile_collectors::prelude::*;

fn main() {
    let cfg = DeploymentConfig {
        field_side: 300.0,
        sink: SinkPlacement::Center,
        topology: Topology::Corridors {
            bands: 3,
            per_band: 50,
            band_height: 20.0,
        },
    };
    let network = Network::build(cfg.generate(7), 30.0);

    let (n_components, _) = components(&network.sensor_graph);
    println!(
        "corridor field: {} sensors in {} disconnected component(s) (R = {:.0} m)",
        network.n_sensors(),
        n_components,
        network.range
    );

    // Static routing: how much of the field can even reach the sink?
    let mh = MultihopMetrics::of(&network);
    println!(
        "multi-hop routing reaches {}/{} sensors — {} are stranded forever",
        mh.reachable,
        network.n_sensors(),
        mh.unreachable
    );

    // The mobile collector serves everything.
    let plan = ShdgPlanner::new()
        .plan(&network)
        .expect("planning is topology-independent");
    plan.validate(&network.deployment.sensors, network.range)
        .unwrap();
    println!(
        "\nSHDG plan serves all {} sensors with {} polling points on a {:.0} m tour",
        plan.n_sensors(),
        plan.n_polling_points(),
        plan.tour_length
    );

    // Prove it end to end with a simulated round.
    let scen = scenario_from_plan(&plan, &network.deployment.sensors);
    let sim = MobileGatheringSim::new(scen, SimConfig::default());
    let round = sim.run();
    println!(
        "simulated round: {}/{} packets collected in {:.1} min",
        round.packets_delivered,
        round.packets_expected,
        round.duration_secs / 60.0
    );
    assert_eq!(round.packets_delivered, network.n_sensors());

    // Static routing round over the same field, for contrast.
    let routing = MultihopRoutingSim::new(&network, SimConfig::default());
    let static_round = routing.run();
    println!(
        "static routing round: {}/{} packets ({:.0}% lost to disconnection)",
        static_round.packets_delivered,
        static_round.packets_expected,
        (1.0 - static_round.delivery_ratio()) * 100.0
    );
}
