//! Regenerates the paper's picture-figures as SVG files: the example
//! network with its polling points and tour (single collector and fleet),
//! plus a disconnected corridor field.
//!
//! ```text
//! cargo run --release --example render_figures
//! ```
//!
//! Outputs land in `results/` (created if missing).

use mobile_collectors::core::fleet::plan_fleet;
use mobile_collectors::prelude::*;
use mobile_collectors::render::{render_fleet_svg, render_plan_svg, RenderOptions};
use std::fs;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let out = Path::new("results");
    fs::create_dir_all(out)?;

    // Figure: the worked example (small net, tour over polling points).
    let small = Network::build(DeploymentConfig::uniform(30, 70.0).generate(42), 25.0);
    let small_plan = ShdgPlanner::new().plan(&small).unwrap();
    let opts = RenderOptions {
        draw_edges: true,
        ..RenderOptions::default()
    };
    fs::write(
        out.join("fig_example_tour.svg"),
        render_plan_svg(&small, &small_plan, &opts),
    )?;
    println!(
        "fig_example_tour.svg      — 30 sensors, {} polling points, {:.0} m tour",
        small_plan.n_polling_points(),
        small_plan.tour_length
    );

    // Figure: a realistic 200-sensor field.
    let big = Network::build(DeploymentConfig::uniform(200, 200.0).generate(42), 30.0);
    let big_plan = ShdgPlanner::new().plan(&big).unwrap();
    fs::write(
        out.join("fig_field_200.svg"),
        render_plan_svg(&big, &big_plan, &RenderOptions::default()),
    )?;
    println!(
        "fig_field_200.svg         — 200 sensors, {} polling points, {:.0} m tour",
        big_plan.n_polling_points(),
        big_plan.tour_length
    );

    // Figure: a 4-collector fleet on a large field.
    let wide = Network::build(DeploymentConfig::uniform(400, 400.0).generate(11), 30.0);
    let wide_plan = ShdgPlanner::new().plan(&wide).unwrap();
    let fleet = plan_fleet(&wide_plan, 4);
    fs::write(
        out.join("fig_fleet_4.svg"),
        render_fleet_svg(&wide, &wide_plan, &fleet, &RenderOptions::default()),
    )?;
    println!(
        "fig_fleet_4.svg           — {} collectors, max sub-tour {:.0} m",
        fleet.n_collectors(),
        fleet.max_length()
    );

    // Figure: disconnected corridors served by the collector.
    let corridors = DeploymentConfig {
        field_side: 300.0,
        sink: SinkPlacement::Center,
        topology: Topology::Corridors {
            bands: 3,
            per_band: 50,
            band_height: 20.0,
        },
    };
    let island_net = Network::build(corridors.generate(7), 30.0);
    let island_plan = ShdgPlanner::new().plan(&island_net).unwrap();
    fs::write(
        out.join("fig_corridors.svg"),
        render_plan_svg(&island_net, &island_plan, &opts),
    )?;
    println!(
        "fig_corridors.svg         — disconnected field, {:.0} m tour serves all {} sensors",
        island_plan.tour_length,
        island_plan.n_sensors()
    );

    Ok(())
}
